"""Compiled kernel tier: the network hot loops behind one backend switch.

The profile of every city-scale run concentrates in a handful of inner
loops — bounded witness Dijkstras during contraction, full/cutoff SSSP,
the pruned-label scan used by build and repair, hub-label merge joins,
and the best-first explorer step.  This module holds each of them as a
standalone kernel with **two implementations**:

* a pure-python reference, extracted verbatim from
  :mod:`repro.network.shortest_path` / :mod:`repro.network.hub_labeling`
  (the default — zero new dependencies, byte-for-byte the behaviour the
  rest of the suite was built against), and
* a ``numba.njit(cache=True)`` twin compiled lazily from
  :mod:`repro.network._kernel_sources` the first time the ``numba``
  backend resolves.

Selection follows the same shape as the scipy fallback in
:mod:`repro.core.matching` and the observability mode switch in
:mod:`repro.obs`: a session-wide ``kernel_backend`` setting
(``auto | python | numba``) set from the CLI (``--kernel-backend``), the
``REPRO_KERNEL_BACKEND`` environment variable, or
:func:`set_kernel_backend`.  ``auto`` resolves to ``numba`` when numba
imports (``pip install .[speed]``) and otherwise falls back to
``python``, logging the fallback once through :mod:`repro.obs.log` —
never a hard failure.  The resolved choice is stamped into run telemetry
(:class:`repro.sim.engine.Simulator`), the reporting footer, and every
``BENCH_*.json``.

Backends are bit-identical, not approximately equal: every kernel pops
``(distance, node)`` heap entries in a unique total order and sums
floats in the same sequence as its reference twin (see
:mod:`repro.network._kernel_sources` for the argument), so
``result_fingerprint`` values never depend on the backend.  The
equivalence suite runs the numba *sources* interpreted against the
references on every environment, and compiled on environments that have
numba.
"""

from __future__ import annotations

import heapq
import math
import os
from collections.abc import Sequence

import numpy as np

from repro.network import _kernel_sources as _sources
from repro.obs.log import get_logger

INFINITY = math.inf

#: Recognised settings for :func:`set_kernel_backend` / ``--kernel-backend``.
KERNEL_BACKENDS = ("auto", "python", "numba")

#: Environment override consulted at import (and by :func:`set_kernel_backend`
#: with no argument); invalid values are ignored rather than fatal.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Minimum numba version known to compile the kernel sources; the
#: ``[speed]`` extra in ``setup.py`` pins the same floor.
NUMBA_FLOOR = "0.57"

_logger = get_logger(__name__)


def _env_setting() -> str:
    value = os.environ.get(ENV_VAR, "").strip().lower()
    return value if value in KERNEL_BACKENDS else "auto"


_setting: str = _env_setting()
_resolved: str | None = None
_compiled: dict | None = None
_fallback_logged = False


def set_kernel_backend(backend: str | None = None) -> str:
    """Select the session-wide kernel backend; returns the resolved choice.

    ``backend`` is one of :data:`KERNEL_BACKENDS`; ``None`` re-reads the
    :data:`ENV_VAR` environment override.  Requesting ``numba`` on an
    environment without numba logs once and resolves to ``python`` —
    mirroring the scipy fallback in :mod:`repro.core.matching`, a missing
    accelerator is never a hard failure.
    """
    global _setting, _resolved
    if backend is None:
        backend = _env_setting()
    if backend not in KERNEL_BACKENDS:
        raise ValueError(f"unknown kernel backend {backend!r}; "
                         f"expected one of {KERNEL_BACKENDS}")
    _setting = backend
    _resolved = None
    return kernel_backend()


def kernel_backend_setting() -> str:
    """The requested setting (``auto | python | numba``), before resolution."""
    return _setting


def kernel_backend() -> str:
    """The resolved backend actually answering kernel calls (``python | numba``)."""
    global _resolved, _compiled, _fallback_logged
    if _resolved is not None:
        return _resolved
    if _setting == "python":
        _resolved = "python"
        return _resolved
    try:
        _compiled = _compile()
        _resolved = "numba"
        _logger.debug("kernel backend resolved to numba %s", numba_version())
    except Exception as exc:  # ImportError, or a numba/llvmlite install too
        # broken to decorate — either way the python tier must keep working.
        if not _fallback_logged:
            _fallback_logged = True
            log = _logger.warning if _setting == "numba" else _logger.info
            log("numba kernel backend unavailable (%s: %s); falling back to "
                "python kernels", type(exc).__name__, exc)
        _resolved = "python"
    return _resolved


def numba_version() -> str | None:
    """The installed numba version, or ``None`` — without importing numba."""
    try:
        from importlib import metadata
        return metadata.version("numba")
    except Exception:
        return None


def kernel_info() -> dict:
    """Backend provenance for telemetry and ``BENCH_*.json`` stamping."""
    return {"kernel_backend": kernel_backend(),
            "kernel_backend_setting": kernel_backend_setting(),
            "numba": numba_version()}


def _compile() -> dict:
    """Decorate every kernel source with ``njit(cache=True)`` (lazy compile).

    Decoration is cheap; machine code is generated per-signature on first
    call and persisted by numba's on-disk cache, so repeat sessions skip
    the JIT entirely.
    """
    import numba

    jit = numba.njit(cache=True, nogil=True)
    return {name: jit(getattr(_sources, name)) for name in _sources.KERNELS}


# --------------------------------------------------------------------------- #
# Dijkstra family (python references extracted from shortest_path.py)
# --------------------------------------------------------------------------- #
def _sssp_python(indptr, indices, weights, n, src, cutoff):
    """Reference full/cutoff SSSP (the PR 1 ``_csr_dijkstra_all`` loop,
    returning settle-ordered parallel lists instead of a dict)."""
    dist = [INFINITY] * n
    dist[src] = 0.0
    seen = [False] * n
    nodes: list[int] = []
    dists: list[float] = []
    heap: list[tuple[float, int]] = [(0.0, src)]
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d, node = pop(heap)
        if seen[node]:
            continue
        if cutoff is not None and d > cutoff:
            break
        seen[node] = True
        nodes.append(node)
        dists.append(d)
        for j in range(indptr[node], indptr[node + 1]):
            nbr = indices[j]
            nd = d + weights[j]
            if cutoff is not None and nd > cutoff:
                # Already past the cutoff: it could never settle, so pushing
                # it would be pure heap churn (the PR 10 witness-profile fix).
                continue
            if nd < dist[nbr]:
                dist[nbr] = nd
                push(heap, (nd, nbr))
    return nodes, dists


def sssp_settled(csr, src: int, cutoff: float | None = None
                 ) -> tuple[list[int], list[float]]:
    """Full/cutoff SSSP over ``csr``; settle-ordered ``(nodes, dists)`` lists.

    ``dict(zip(*sssp_settled(...)))`` reproduces the historical
    ``_csr_dijkstra_all`` mapping exactly (settled nodes are unique and
    dicts preserve insertion order).
    """
    if kernel_backend() == "numba":
        cut = INFINITY if cutoff is None else cutoff
        count, nodes, dists = _compiled["sssp_kernel"](
            csr.indptr, csr.indices, csr.weights, csr.num_nodes, src, cut)
        return nodes[:count].tolist(), dists[:count].tolist()
    return _sssp_python(csr.indptr_list, csr.indices_list, csr.weights_list,
                        csr.num_nodes, src, cutoff)


def _p2p_python(indptr, indices, weights, n, src, dst):
    """Reference point-to-point Dijkstra (``_csr_dijkstra_to_target``)."""
    dist = [INFINITY] * n
    dist[src] = 0.0
    heap: list[tuple[float, int]] = [(0.0, src)]
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d, node = pop(heap)
        if d > dist[node]:
            continue
        if node == dst:
            return d
        for j in range(indptr[node], indptr[node + 1]):
            nbr = indices[j]
            nd = d + weights[j]
            if nd < dist[nbr]:
                dist[nbr] = nd
                push(heap, (nd, nbr))
    return INFINITY


def point_to_point(csr, src: int, dst: int) -> float:
    """Static-weight point-to-point distance over ``csr`` (inf when cut)."""
    if kernel_backend() == "numba":
        return float(_compiled["p2p_kernel"](
            csr.indptr, csr.indices, csr.weights, csr.num_nodes, src, dst))
    return _p2p_python(csr.indptr_list, csr.indices_list, csr.weights_list,
                       csr.num_nodes, src, dst)


def _path_python(indptr, indices, weights, n, src, dst):
    """Reference Dijkstra with parent tracking (``_csr_shortest_path``)."""
    dist = [INFINITY] * n
    parent = [-1] * n
    dist[src] = 0.0
    heap: list[tuple[float, int]] = [(0.0, src)]
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d, node = pop(heap)
        if d > dist[node]:
            continue
        if node == dst:
            break
        for j in range(indptr[node], indptr[node + 1]):
            nbr = indices[j]
            nd = d + weights[j]
            if nd < dist[nbr]:
                dist[nbr] = nd
                parent[nbr] = node
                push(heap, (nd, nbr))
    if dist[dst] == INFINITY:
        return None
    path = [dst]
    while path[-1] != src:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def shortest_path_indices(csr, src: int, dst: int) -> list[int] | None:
    """Index path of a shortest ``src -> dst`` route, or ``None`` when cut."""
    if kernel_backend() == "numba":
        dd, parent = _compiled["path_kernel"](
            csr.indptr, csr.indices, csr.weights, csr.num_nodes, src, dst)
        if dd == INFINITY:
            return None
        path = [dst]
        while path[-1] != src:
            path.append(int(parent[path[-1]]))
        path.reverse()
        return path
    return _path_python(csr.indptr_list, csr.indices_list, csr.weights_list,
                        csr.num_nodes, src, dst)


# --------------------------------------------------------------------------- #
# best-first explorer step
# --------------------------------------------------------------------------- #
class ExplorerWorkspace:
    """Persistent state for the incremental best-first explorer kernel."""

    __slots__ = ("csr", "dist", "settled", "heap_d", "heap_n", "state")

    def __init__(self, csr, src: int) -> None:
        n = csr.num_nodes
        self.csr = csr
        self.dist = np.full(n, INFINITY)
        self.settled = np.zeros(n, np.bool_)
        self.heap_d = np.empty(len(csr.indices) + 2, np.float64)
        self.heap_n = np.empty(len(csr.indices) + 2, np.int64)
        self.state = np.zeros(1, np.int64)
        self.dist[src] = 0.0
        self.heap_d[0] = 0.0
        self.heap_n[0] = src
        self.state[0] = 1


def explorer_workspace(csr, src: int) -> ExplorerWorkspace:
    """Allocate explorer state (arrays sized to ``csr``) seeded at ``src``."""
    return ExplorerWorkspace(csr, src)


def explorer_next(ws: ExplorerWorkspace) -> tuple[int, float]:
    """Settle and return the next ``(node_index, dist)``; ``(-1, 0.0)`` at end.

    The python fallback runs the kernel source interpreted on the same
    workspace — :class:`~repro.network.shortest_path.BestFirstExplorer`
    keeps its historical list-based loop for the python backend and only
    routes here when the backend is ``numba``, so the fallback exists for
    API completeness and the equivalence suite.
    """
    csr = ws.csr
    fn = (_compiled["explorer_next_kernel"] if kernel_backend() == "numba"
          else _sources.explorer_next_kernel)
    node, d = fn(csr.indptr, csr.indices, csr.weights, ws.dist, ws.settled,
                 ws.heap_d, ws.heap_n, ws.state)
    return int(node), float(d)


# --------------------------------------------------------------------------- #
# contraction witness searches
# --------------------------------------------------------------------------- #
class ContractionWorkspace:
    """Reusable witness-search state for one simulated contraction.

    The python backend shares the contraction's ``adj_out`` dict-of-dicts
    and replaces the historical per-call ``dist`` dict / ``seen`` set with
    stamp-versioned preallocated buffers (same heap tuples, same pops —
    bit-identical searches, no per-call allocation).  The numba backend
    additionally mirrors the *out*-adjacency as linked-chain arrays
    (``head``/``edge_to``/``edge_wt``/``edge_next``) that the compiled
    witness kernel traverses; the mutators keep the mirror in sync with
    the dicts as contraction inserts shortcuts and removes nodes.
    Witness searches only ever traverse out-edges, so the in-adjacency is
    never mirrored.
    """

    def __init__(self, n: int, adj_out: list[dict[int, float]],
                 backend: str | None = None) -> None:
        self._n = n
        self._adj_out = adj_out
        self._backend = backend if backend is not None else kernel_backend()
        self._stamp = 0
        self._dist_l: list[float] = []
        if self._backend == "numba":
            total = 0
            for nbrs in adj_out:
                total += len(nbrs)
            cap = max(16, 2 * total)
            self._head = np.full(n, -1, np.int64)
            self._eto = np.empty(cap, np.int64)
            self._ewt = np.empty(cap, np.float64)
            self._enext = np.empty(cap, np.int64)
            count = 0
            for u, nbrs in enumerate(adj_out):
                for v, w in nbrs.items():
                    self._eto[count] = v
                    self._ewt[count] = w
                    self._enext[count] = self._head[u]
                    self._head[u] = count
                    count += 1
            self._edge_count = count
            self._edge_cap = cap
            self._dist = np.empty(n, np.float64)
            self._dstamp = np.full(n, -1, np.int64)
            self._sstamp = np.full(n, -1, np.int64)
            self._tpos = np.zeros(n, np.int64)
            self._tstamp = np.full(n, -1, np.int64)
            self._found = np.zeros(256, np.bool_)
            self._alloc_heap()
            self._kernel = _compiled["witness_kernel"]
        else:
            self._dist_l = [INFINITY] * n
            self._dstamp_l = [-1] * n
            self._sstamp_l = [-1] * n

    def _alloc_heap(self) -> None:
        # Pushes are strict improvements, so the live heap never exceeds the
        # number of out-edge slots; capacity tracks the edge arrays.
        self._heap_d = np.empty(self._edge_cap + 2, np.float64)
        self._heap_n = np.empty(self._edge_cap + 2, np.int64)

    # -- mutators (numba mirror maintenance; python backend shares the dicts) --
    def update_edge(self, u: int, v: int, w: float) -> None:
        """Insert or tighten the out-edge ``u -> v`` in the mirror."""
        if self._backend != "numba":
            return
        eto = self._eto
        enext = self._enext
        j = self._head[u]
        while j != -1:
            if eto[j] == v:
                self._ewt[j] = w
                return
            j = enext[j]
        if self._edge_count == self._edge_cap:
            self._edge_cap *= 2
            self._eto = np.resize(self._eto, self._edge_cap)
            self._ewt = np.resize(self._ewt, self._edge_cap)
            self._enext = np.resize(self._enext, self._edge_cap)
            self._alloc_heap()
        slot = self._edge_count
        self._eto[slot] = v
        self._ewt[slot] = w
        self._enext[slot] = self._head[u]
        self._head[u] = slot
        self._edge_count += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Unlink the out-edge ``u -> v`` from the mirror (if present)."""
        if self._backend != "numba":
            return
        eto = self._eto
        enext = self._enext
        j = self._head[u]
        prev = -1
        while j != -1:
            if eto[j] == v:
                if prev == -1:
                    self._head[u] = enext[j]
                else:
                    enext[prev] = enext[j]
                return
            prev = j
            j = enext[j]

    def clear_node(self, u: int) -> None:
        """Drop every out-edge of ``u`` from the mirror."""
        if self._backend == "numba":
            self._head[u] = -1

    # -- the bounded witness search ---------------------------------------- #
    def witness(self, source: int, banned: int, tgt_nodes: Sequence[int],
                tgt_vias: Sequence[float], cutoff: float,
                settle_cap: int) -> list[bool]:
        """Bounded Dijkstra from ``source`` avoiding ``banned``.

        ``found[i]`` reports whether a witness path to ``tgt_nodes[i]`` no
        longer than ``tgt_vias[i] + 1e-12`` was certified within ``cutoff``
        and ``settle_cap`` settles; unfound targets need a shortcut.
        """
        if self._backend != "numba":
            return self._witness_python(source, banned, tgt_nodes, tgt_vias,
                                        cutoff, settle_cap)
        k = len(tgt_nodes)
        if k > len(self._found):
            self._found = np.zeros(max(k, 2 * len(self._found)), np.bool_)
        self._stamp += 1
        self._kernel(self._head, self._eto, self._ewt, self._enext,
                     source, banned,
                     np.asarray(tgt_nodes, dtype=np.int64),
                     np.asarray(tgt_vias, dtype=np.float64),
                     cutoff, settle_cap,
                     self._dist, self._dstamp, self._sstamp, self._stamp,
                     self._tpos, self._tstamp, self._heap_d, self._heap_n,
                     self._found)
        return self._found[:k].tolist()

    def _witness_python(self, source, banned, tgt_nodes, tgt_vias, cutoff,
                        settle_cap):
        # Extracted from HubLabelIndex._contract's per-in-neighbour witness
        # Dijkstra (PR 6); per-call dict/set state replaced by the shared
        # stamped buffers.  Same heap tuples, same pop order, same results.
        adj_out = self._adj_out
        dist = self._dist_l
        dstamp = self._dstamp_l
        sstamp = self._sstamp_l
        self._stamp += 1
        sid = self._stamp
        pos: dict[int, int] = {}
        for i, b in enumerate(tgt_nodes):
            pos[b] = i
        found = [False] * len(tgt_nodes)
        remaining = len(tgt_nodes)
        dist[source] = 0.0
        dstamp[source] = sid
        heap: list[tuple[float, int]] = [(0.0, source)]
        budget = settle_cap
        while heap and remaining and budget:
            d, x = heapq.heappop(heap)
            if sstamp[x] == sid:
                continue
            sstamp[x] = sid
            budget -= 1
            if d > cutoff:
                break
            i = pos.get(x)
            if i is not None and not found[i] and d <= tgt_vias[i] + 1e-12:
                found[i] = True
                remaining -= 1
                if not remaining:
                    break
            for y, w in adj_out[x].items():
                if y == banned or sstamp[y] == sid:
                    continue
                nd = d + w
                if nd <= cutoff and (dstamp[y] != sid or nd < dist[y]):
                    dist[y] = nd
                    dstamp[y] = sid
                    heapq.heappush(heap, (nd, y))
        return found


def contraction_workspace(n: int, adj_out: list[dict[int, float]]
                          ) -> ContractionWorkspace:
    """Workspace for :meth:`HubLabelIndex._contract` witness searches."""
    return ContractionWorkspace(n, adj_out)


# --------------------------------------------------------------------------- #
# pruned landmark labeling (build)
# --------------------------------------------------------------------------- #
def _pruned_search_python(csr, hub, rank, search_id, hub_ranks, hub_dists,
                          label_ranks, label_dists, dist, stamp, settled,
                          scratch):
    """One pruned Dijkstra from ``hub`` (extracted ``_pruned_search``).

    On the forward pass (``csr`` = out-edges) the settled nodes extend
    their *in*-labels and pruning consults the hub's *out*-label; the
    backward pass is symmetric.  ``hub_ranks``/``hub_dists`` is the hub's
    own already-built label on the pruning side, scattered into the dense
    ``scratch`` array for O(1) lookups.
    """
    for r, d in zip(hub_ranks, hub_dists, strict=True):
        scratch[r] = d
    indptr = csr.indptr_list
    indices = csr.indices_list
    weights = csr.weights_list
    dist[hub] = 0.0
    stamp[hub] = search_id
    heap: list[tuple[float, int]] = [(0.0, hub)]
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d, node = pop(heap)
        if settled[node] == search_id:
            continue
        settled[node] = search_id
        if node != hub:
            # query(hub, node) via the labels built so far: prune when an
            # earlier hub already certifies a distance <= d.
            best = INFINITY
            for r, dv in zip(label_ranks[node], label_dists[node], strict=True):
                cand = scratch[r] + dv
                if cand < best:
                    best = cand
            if best <= d:
                continue
        label_ranks[node].append(rank)
        label_dists[node].append(d)
        for j in range(indptr[node], indptr[node + 1]):
            nbr = indices[j]
            if settled[nbr] == search_id:
                continue
            nd = d + weights[j]
            if nd == INFINITY:
                # Severed edge (infinite weight): the neighbour is not
                # reachable this way; pushing it would only be popped and
                # pruned later, so skip it outright.
                continue
            if stamp[nbr] != search_id or nd < dist[nbr]:
                dist[nbr] = nd
                stamp[nbr] = search_id
                push(heap, (nd, nbr))
    for r in hub_ranks:
        scratch[r] = INFINITY


def _flatten_labels(ranks, dists):
    """Flatten per-node label lists into CSR-style arrays (with sentinel).

    The returned indptr carries one extra slot past ``num_nodes``: it
    backs the "unknown node" sentinel index, whose empty label range makes
    batched queries touching it resolve to infinity like the scalar path.
    """
    n = len(ranks)
    indptr = np.zeros(n + 2, dtype=np.int64)
    np.cumsum([len(lst) for lst in ranks], out=indptr[1:n + 1])
    indptr[n + 1] = indptr[n]
    total = int(indptr[n])
    flat_ranks = np.empty(total, dtype=np.int64)
    flat_dists = np.empty(total, dtype=np.float64)
    pos = 0
    for r_list, d_list in zip(ranks, dists, strict=True):
        nxt = pos + len(r_list)
        flat_ranks[pos:nxt] = r_list
        flat_dists[pos:nxt] = d_list
        pos = nxt
    return indptr, flat_ranks, flat_dists


def _pruned_labeling_python(csr, rcsr, order_idx):
    # Extracted from HubLabelIndex._build: one forward and one backward
    # pruned search per hub, over preallocated stamp-versioned buffers.
    n = csr.num_nodes
    out_ranks: list[list[int]] = [[] for _ in range(n)]
    out_dists: list[list[float]] = [[] for _ in range(n)]
    in_ranks: list[list[int]] = [[] for _ in range(n)]
    in_dists: list[list[float]] = [[] for _ in range(n)]
    dist = [INFINITY] * n
    stamp = [-1] * n
    settled = [-1] * n
    scratch = [INFINITY] * n  # dense hub-label scratch, indexed by rank
    for rank, hub in enumerate(order_idx):
        _pruned_search_python(csr, hub, rank, 2 * rank,
                              out_ranks[hub], out_dists[hub],
                              in_ranks, in_dists,
                              dist, stamp, settled, scratch)
        _pruned_search_python(rcsr, hub, rank, 2 * rank + 1,
                              in_ranks[hub], in_dists[hub],
                              out_ranks, out_dists,
                              dist, stamp, settled, scratch)
    return (*_flatten_labels(out_ranks, out_dists),
            *_flatten_labels(in_ranks, in_dists))


def pruned_labeling(csr, rcsr, order_idx: Sequence[int]):
    """Build the full 2-hop cover for ``order_idx`` (node indices, rank order).

    Returns ``(out_indptr, out_ranks, out_dists, in_indptr, in_ranks,
    in_dists)`` in the exact flat layout :class:`HubLabelIndex` stores.
    The numba path retries with a doubled label pool on overflow (each
    retry restarts the build, so the initial guess is deliberately
    generous: metro-scale indexes land near 45 entries/side/node).
    """
    if kernel_backend() == "numba":
        order = np.asarray(order_idx, dtype=np.int64)
        cap = max(1024, 128 * csr.num_nodes)
        while True:
            ok, *arrays = _compiled["pruned_labeling_kernel"](
                csr.indptr, csr.indices, csr.weights,
                rcsr.indptr, rcsr.indices, rcsr.weights,
                csr.num_nodes, order, cap)
            if ok:
                return tuple(arrays)
            cap *= 2
    return _pruned_labeling_python(csr, rcsr, order_idx)


# --------------------------------------------------------------------------- #
# pruned label re-selection (repair)
# --------------------------------------------------------------------------- #
def _select_label_python(cand_ranks, cand_dists, cand_rows, fresh_indptr,
                         fresh_ranks, fresh_dists, opp_indptr, opp_ranks,
                         opp_dists, cand_nodes, scratch):
    # Array-layout twin of HubLabelIndex._pruned_label (the dict-based
    # reference stays in hub_labeling.py for the python repair path); the
    # equivalence suite pins all three implementations to each other.
    ranks: list[int] = []
    dists: list[float] = []
    for c in range(len(cand_ranks)):
        rank = int(cand_ranks[c])
        d = float(cand_dists[c])
        if not dists:
            ranks.append(rank)
            dists.append(d)
            scratch[rank] = d
            continue
        pruned = False
        cutoff = d + 1e-12
        row = int(cand_rows[c])
        if row >= 0:
            lo = int(fresh_indptr[row])
            hi = int(fresh_indptr[row + 1])
            for t, r in enumerate(ranks):
                a = np.searchsorted(fresh_ranks[lo:hi], r)
                if a < hi - lo and fresh_ranks[lo + a] == r:
                    if dists[t] + fresh_dists[lo + a] <= cutoff:
                        pruned = True
                        break
        else:
            node = int(cand_nodes[c])
            for j in range(int(opp_indptr[node]), int(opp_indptr[node + 1])):
                r = opp_ranks[j]
                if r >= rank:
                    break
                if scratch[r] + opp_dists[j] <= cutoff:
                    pruned = True
                    break
        if pruned:
            continue
        ranks.append(rank)
        dists.append(d)
        scratch[rank] = d
    for r in ranks:
        scratch[r] = INFINITY
    return ranks, dists


def select_pruned_label(cand_ranks, cand_dists, cand_rows, fresh_indptr,
                        fresh_ranks, fresh_dists, opp_indptr, opp_ranks,
                        opp_dists, cand_nodes, scratch
                        ) -> tuple[list[int], list[float]]:
    """Re-select one repaired node's pruned label from rank-sorted candidates.

    See :func:`_kernel_sources.select_label_kernel` for the argument
    layout; returns plain ``(ranks, dists)`` lists ready to drop into the
    index's patch overlay.
    """
    if kernel_backend() == "numba":
        kept, keep_r, keep_d = _compiled["select_label_kernel"](
            cand_ranks, cand_dists, cand_rows, fresh_indptr, fresh_ranks,
            fresh_dists, opp_indptr, opp_ranks, opp_dists, cand_nodes, scratch)
        return keep_r[:kept].tolist(), keep_d[:kept].tolist()
    return _select_label_python(cand_ranks, cand_dists, cand_rows, fresh_indptr,
                                fresh_ranks, fresh_dists, opp_indptr, opp_ranks,
                                opp_dists, cand_nodes, scratch)


# --------------------------------------------------------------------------- #
# hub-label merge joins (query / query_many / query_block)
# --------------------------------------------------------------------------- #
def _merge_join_python(a_ranks, a_dists, b_ranks, b_dists):
    # Extracted from HubLabelIndex.query's merge join over rank-sorted labels.
    i = j = 0
    la = len(a_ranks)
    lb = len(b_ranks)
    best = INFINITY
    while i < la and j < lb:
        ra = a_ranks[i]
        rb = b_ranks[j]
        if ra == rb:
            cand = a_dists[i] + b_dists[j]
            if cand < best:
                best = cand
            i += 1
            j += 1
        elif ra < rb:
            i += 1
        else:
            j += 1
    return best


def merge_join(a_ranks, a_dists, b_ranks, b_dists) -> float:
    """Scalar label query: min of ``a + b`` over common hub ranks."""
    if kernel_backend() == "numba":
        return float(_compiled["merge_join_kernel"](
            np.ascontiguousarray(a_ranks, dtype=np.int64),
            np.ascontiguousarray(a_dists, dtype=np.float64),
            np.ascontiguousarray(b_ranks, dtype=np.int64),
            np.ascontiguousarray(b_dists, dtype=np.float64)))
    return _merge_join_python(a_ranks, a_dists, b_ranks, b_dists)


def query_pairs(out_indptr, out_ranks, out_dists, in_indptr, in_ranks, in_dists,
                src, tgt) -> np.ndarray:
    """Paired label queries over flat label arrays; ``res[p] = d(src_p, tgt_p)``.

    The python fallback runs one reference merge join per pair — the
    production python backend answers batches through
    :meth:`HubLabelIndex.query_many`'s vectorised dense-scatter path and
    only routes here on the numba backend.
    """
    if kernel_backend() == "numba":
        return _compiled["query_pairs_kernel"](out_indptr, out_ranks, out_dists,
                                               in_indptr, in_ranks, in_dists,
                                               src, tgt)
    res = np.full(len(src), INFINITY)
    for p in range(len(src)):
        s = src[p]
        t = tgt[p]
        res[p] = _merge_join_python(
            out_ranks[out_indptr[s]:out_indptr[s + 1]],
            out_dists[out_indptr[s]:out_indptr[s + 1]],
            in_ranks[in_indptr[t]:in_indptr[t + 1]],
            in_dists[in_indptr[t]:in_indptr[t + 1]])
    return res


def query_block(out_indptr, out_ranks, out_dists, in_indptr, in_ranks, in_dists,
                src, tgt) -> np.ndarray:
    """Cross-product label queries; ``out[a, b] = d(src_a, tgt_b)``."""
    if kernel_backend() == "numba":
        return _compiled["query_block_kernel"](out_indptr, out_ranks, out_dists,
                                               in_indptr, in_ranks, in_dists,
                                               src, tgt)
    out = np.full((len(src), len(tgt)), INFINITY)
    for a in range(len(src)):
        s = src[a]
        a_r = out_ranks[out_indptr[s]:out_indptr[s + 1]]
        a_d = out_dists[out_indptr[s]:out_indptr[s + 1]]
        if not len(a_r):
            continue
        for b in range(len(tgt)):
            t = tgt[b]
            out[a, b] = _merge_join_python(
                a_r, a_d,
                in_ranks[in_indptr[t]:in_indptr[t + 1]],
                in_dists[in_indptr[t]:in_indptr[t + 1]])
    return out


__all__ = [
    "KERNEL_BACKENDS",
    "ENV_VAR",
    "NUMBA_FLOOR",
    "set_kernel_backend",
    "kernel_backend",
    "kernel_backend_setting",
    "numba_version",
    "kernel_info",
    "sssp_settled",
    "point_to_point",
    "shortest_path_indices",
    "ExplorerWorkspace",
    "explorer_workspace",
    "explorer_next",
    "ContractionWorkspace",
    "contraction_workspace",
    "pruned_labeling",
    "select_pruned_label",
    "merge_join",
    "query_pairs",
    "query_block",
    "INFINITY",
]
