"""Shortest-path primitives on the time-dependent road network.

The paper needs three flavours of search:

* point-to-point quickest path queries ``SP(u, v, t)`` (used everywhere —
  route plans, marginal costs, first/last mile),
* full single-source searches (used to build the hub-label index and the
  workload statistics), and
* *best-first exploration* from a vehicle's location that yields road-network
  nodes in ascending (possibly angular-distance-blended) cost order, which is
  the engine behind the sparsified FoodGraph construction (Alg. 2).

All searches treat the traversal time of an edge as fixed for the duration of
one query at the query timestamp ``t`` (the same simplification the paper
makes inside an accumulation window).

Two implementations coexist:

* **Array kernels** — the default.  They run on the network's cached CSR
  adjacency (:meth:`RoadNetwork.csr`): flat ``indptr``/``indices``/``weights``
  lists with a preallocated distance buffer, no per-node dict lookups and no
  per-edge closure calls.  Because the congestion profile scales every edge
  uniformly within a time slot, the kernels search on static weights and
  scale distances by the slot multiplier once at the end.
* **Reference implementations** (``*_reference``) — the original dict/heap
  code.  They accept arbitrary per-edge ``weight`` callables (needed by the
  angular-distance blend, whose weights are vehicle-specific and cannot be
  expressed as a uniform scaling) and serve as the ground truth for the
  kernel-equivalence property tests.

Public entry points dispatch automatically: a custom ``weight`` routes to the
reference implementation, everything else runs on the array kernels.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable, Iterator

from repro.network import kernels as _kernels
from repro.network.graph import RoadNetwork

INFINITY = math.inf

WeightFunction = Callable[[int, int], float]


def _edge_weight_fn(network: RoadNetwork, t: float) -> WeightFunction:
    """Return a closure giving ``beta((u, v), t)`` for the query timestamp."""
    return lambda u, v: network.edge_time(u, v, t)


# --------------------------------------------------------------------------- #
# array kernels (CSR, static weights, uniform time-slot scaling)
#
# Since PR 10 the loop bodies live in repro.network.kernels, which serves
# them from the extracted python references or their numba-compiled twins
# depending on the session's kernel backend; these wrappers keep the
# historical names and signatures every caller imports.
# --------------------------------------------------------------------------- #
def _csr_dijkstra_to_target(csr, src: int, dst: int) -> float:
    """Static-weight point-to-point Dijkstra on flat CSR arrays."""
    return _kernels.point_to_point(csr, src, dst)


def _csr_dijkstra_all(csr, src: int, cutoff: float | None = None) -> dict[int, float]:
    """Static-weight SSSP on flat CSR arrays; returns ``{node_index: dist}``.

    The mapping preserves settle order (the kernel emits settled pairs in
    pop order and dicts keep insertion order), exactly like the historical
    inline dict construction.
    """
    nodes, dists = _kernels.sssp_settled(csr, src, cutoff)
    return dict(zip(nodes, dists, strict=True))


def _csr_shortest_path(csr, src: int, dst: int) -> list[int] | None:
    """Static-weight Dijkstra with parent tracking; returns index path or None."""
    return _kernels.shortest_path_indices(csr, src, dst)


# --------------------------------------------------------------------------- #
# reference implementations (dict/heap, arbitrary weight callables)
# --------------------------------------------------------------------------- #
def dijkstra_reference(network: RoadNetwork, source: int, target: int,
                       t: float = 0.0,
                       weight: WeightFunction | None = None) -> float:
    """Dict-based point-to-point Dijkstra (ground truth / custom weights)."""
    if source == target:
        return 0.0
    weight = weight or _edge_weight_fn(network, t)
    dist: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    visited: set = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in visited:
            continue
        if node == target:
            return d
        visited.add(node)
        for nbr, _ in network.neighbors(node):
            if nbr in visited:
                continue
            nd = d + weight(node, nbr)
            if nd < dist.get(nbr, INFINITY):
                dist[nbr] = nd
                heapq.heappush(heap, (nd, nbr))
    return INFINITY


def dijkstra_all_reference(network: RoadNetwork, source: int, t: float = 0.0,
                           weight: WeightFunction | None = None,
                           cutoff: float | None = None) -> dict[int, float]:
    """Dict-based SSSP (ground truth / custom weights)."""
    weight = weight or _edge_weight_fn(network, t)
    dist: dict[int, float] = {source: 0.0}
    final: dict[int, float] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in final:
            continue
        if cutoff is not None and d > cutoff:
            break
        final[node] = d
        for nbr, _ in network.neighbors(node):
            if nbr in final:
                continue
            nd = d + weight(node, nbr)
            if nd < dist.get(nbr, INFINITY):
                dist[nbr] = nd
                heapq.heappush(heap, (nd, nbr))
    return final


# --------------------------------------------------------------------------- #
# public entry points
# --------------------------------------------------------------------------- #
def dijkstra(network: RoadNetwork, source: int, target: int, t: float = 0.0,
             weight: WeightFunction | None = None) -> float:
    """Quickest-path length ``SP(source, target, t)`` in seconds.

    Returns ``math.inf`` when ``target`` is unreachable.  A custom ``weight``
    function may be supplied (used by tests and by the angular-distance
    machinery); it defaults to the network's time-dependent edge weight.
    """
    if source == target:
        return 0.0
    if weight is not None:
        return dijkstra_reference(network, source, target, t, weight)
    csr = network.csr()
    if source not in csr.index_of or target not in csr.index_of:
        return dijkstra_reference(network, source, target, t)
    static = _csr_dijkstra_to_target(csr, csr.index_of[source], csr.index_of[target])
    return static * network.profile.multiplier(t)


def dijkstra_all(network: RoadNetwork, source: int, t: float = 0.0,
                 weight: WeightFunction | None = None,
                 cutoff: float | None = None) -> dict[int, float]:
    """Single-source quickest-path lengths from ``source`` to every node.

    ``cutoff`` stops the search once the frontier distance exceeds it, which
    keeps workload statistics and index construction cheap on large networks.
    """
    if weight is not None:
        return dijkstra_all_reference(network, source, t, weight, cutoff)
    csr = network.csr()
    if source not in csr.index_of:
        return dijkstra_all_reference(network, source, t, cutoff=cutoff)
    multiplier = network.profile.multiplier(t)
    static_cutoff = None if cutoff is None else cutoff / multiplier
    settled = _csr_dijkstra_all(csr, csr.index_of[source], static_cutoff)
    ids = csr.node_ids
    return {ids[i]: d * multiplier for i, d in settled.items()}


def dijkstra_all_reverse(network: RoadNetwork, target: int, t: float = 0.0,
                         cutoff: float | None = None) -> dict[int, float]:
    """Quickest-path lengths from every node *to* ``target`` (reverse search)."""
    csr = network.csr(reverse=True)
    if target not in csr.index_of:
        # Mirrors the dict-based search from an isolated node: it settles
        # only itself.
        return {target: 0.0}
    multiplier = network.profile.multiplier(t)
    static_cutoff = None if cutoff is None else cutoff / multiplier
    settled = _csr_dijkstra_all(csr, csr.index_of[target], static_cutoff)
    ids = csr.node_ids
    return {ids[i]: d * multiplier for i, d in settled.items()}


def shortest_path_nodes(network: RoadNetwork, source: int, target: int,
                        t: float = 0.0) -> list[int]:
    """Return the node sequence of a quickest path from ``source`` to ``target``.

    Raises :class:`ValueError` when no path exists.  The simulator uses the
    expanded node sequence to move vehicles edge by edge so that their
    positions (and hence bearings) stay consistent with the road network.

    The quickest path is time-invariant (uniform slot scaling), so the search
    always runs on static weights regardless of ``t``.
    """
    if source == target:
        return [source]
    csr = network.csr()
    if source not in csr.index_of or target not in csr.index_of:
        raise ValueError(f"no path from {source} to {target}")
    path = _csr_shortest_path(csr, csr.index_of[source], csr.index_of[target])
    if path is None:
        raise ValueError(f"no path from {source} to {target}")
    ids = csr.node_ids
    return [ids[i] for i in path]


def shortest_path_length(network: RoadNetwork, source: int, target: int,
                         t: float = 0.0) -> float:
    """Alias of :func:`dijkstra` with the paper's ``SP(u, v, t)`` semantics."""
    return dijkstra(network, source, target, t)


class BestFirstExplorer:
    """Incremental best-first search from a single source node.

    Alg. 2 of the paper expands road-network nodes around each vehicle in
    ascending order of (blended) cost, stopping as soon as the vehicle has
    acquired ``k`` candidate batches.  This class exposes that expansion as a
    lazy iterator: each call to :meth:`__next__` pops the next node in cost
    order, so the FoodGraph builder can stop early without wasting work.

    ``weight`` may be any non-negative edge weight function; FoodMatch passes
    the vehicle-sensitive weight ``alpha(v, e, t)`` of Eq. 8, while the plain
    sparsifier passes ``beta(e, t)``.  With the default time-dependent weight
    the expansion runs on the CSR array kernel (static weights scale
    uniformly within a slot, so the *order* of expansion is identical and the
    reported costs are the scaled static distances).
    """

    def __init__(self, network: RoadNetwork, source: int,
                 weight: WeightFunction | None = None, t: float = 0.0) -> None:
        self._network = network
        self._visited_count = 0
        if weight is None and source not in network.csr().index_of:
            # Unknown source: the dict-based search settles only the source
            # itself; route through the reference branch to preserve that.
            weight = _edge_weight_fn(network, t)
        if weight is None:
            csr = network.csr()
            self._csr = csr
            self._multiplier = network.profile.multiplier(t)
            src = csr.index_of[source]
            if _kernels.kernel_backend() == "numba":
                # Compiled settle steps over a persistent array workspace;
                # expansion order and costs are bit-identical to the list
                # path (see repro.network.kernels).
                self._kernel_ws = _kernels.explorer_workspace(csr, src)
            else:
                self._kernel_ws = None
                self._dist_arr = [INFINITY] * csr.num_nodes
                self._dist_arr[src] = 0.0
                self._heap: list[tuple[float, int]] = [(0.0, src)]
                self._settled = [False] * csr.num_nodes
        else:
            self._csr = None
            self._weight = weight
            self._dist: dict[int, float] = {source: 0.0}
            self._heap = [(0.0, source)]
            self._visited: set = set()

    def __iter__(self) -> Iterator[tuple[int, float]]:
        return self

    def __next__(self) -> tuple[int, float]:
        """Return the next ``(node, cost)`` pair in ascending cost order."""
        if self._csr is not None:
            return self._next_csr()
        return self._next_reference()

    def _next_csr(self) -> tuple[int, float]:
        csr = self._csr
        if self._kernel_ws is not None:
            node, d = _kernels.explorer_next(self._kernel_ws)
            if node < 0:
                raise StopIteration
            self._visited_count += 1
            return csr.node_ids[node], d * self._multiplier
        indptr = csr.indptr_list
        indices = csr.indices_list
        weights = csr.weights_list
        dist = self._dist_arr
        settled = self._settled
        heap = self._heap
        push = heapq.heappush
        while heap:
            d, node = heapq.heappop(heap)
            if settled[node]:
                continue
            settled[node] = True
            self._visited_count += 1
            for j in range(indptr[node], indptr[node + 1]):
                nbr = indices[j]
                nd = d + weights[j]
                if nd < dist[nbr]:
                    dist[nbr] = nd
                    push(heap, (nd, nbr))
            return csr.node_ids[node], d * self._multiplier
        raise StopIteration

    def _next_reference(self) -> tuple[int, float]:
        while self._heap:
            d, node = heapq.heappop(self._heap)
            if node in self._visited:
                continue
            self._visited.add(node)
            self._visited_count += 1
            for nbr, _ in self._network.neighbors(node):
                if nbr in self._visited:
                    continue
                nd = d + self._weight(node, nbr)
                if nd < self._dist.get(nbr, INFINITY):
                    self._dist[nbr] = nd
                    heapq.heappush(self._heap, (nd, nbr))
            return node, d
        raise StopIteration

    @property
    def visited_count(self) -> int:
        """Number of nodes settled so far (an efficiency statistic)."""
        return self._visited_count


__all__ = [
    "dijkstra",
    "dijkstra_all",
    "dijkstra_all_reverse",
    "dijkstra_reference",
    "dijkstra_all_reference",
    "shortest_path_nodes",
    "shortest_path_length",
    "BestFirstExplorer",
    "WeightFunction",
    "INFINITY",
]
