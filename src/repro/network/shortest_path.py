"""Shortest-path primitives on the time-dependent road network.

The paper needs three flavours of search:

* point-to-point quickest path queries ``SP(u, v, t)`` (used everywhere —
  route plans, marginal costs, first/last mile),
* full single-source searches (used to build the hub-label index and the
  workload statistics), and
* *best-first exploration* from a vehicle's location that yields road-network
  nodes in ascending (possibly angular-distance-blended) cost order, which is
  the engine behind the sparsified FoodGraph construction (Alg. 2).

All searches treat the traversal time of an edge as fixed for the duration of
one query at the query timestamp ``t`` (the same simplification the paper
makes inside an accumulation window).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.network.graph import RoadNetwork

INFINITY = math.inf

WeightFunction = Callable[[int, int], float]


def _edge_weight_fn(network: RoadNetwork, t: float) -> WeightFunction:
    """Return a closure giving ``beta((u, v), t)`` for the query timestamp."""
    return lambda u, v: network.edge_time(u, v, t)


def dijkstra(network: RoadNetwork, source: int, target: int, t: float = 0.0,
             weight: Optional[WeightFunction] = None) -> float:
    """Quickest-path length ``SP(source, target, t)`` in seconds.

    Returns ``math.inf`` when ``target`` is unreachable.  A custom ``weight``
    function may be supplied (used by tests and by the angular-distance
    machinery); it defaults to the network's time-dependent edge weight.
    """
    if source == target:
        return 0.0
    weight = weight or _edge_weight_fn(network, t)
    dist: Dict[int, float] = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited: set = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in visited:
            continue
        if node == target:
            return d
        visited.add(node)
        for nbr, _ in network.neighbors(node):
            if nbr in visited:
                continue
            nd = d + weight(node, nbr)
            if nd < dist.get(nbr, INFINITY):
                dist[nbr] = nd
                heapq.heappush(heap, (nd, nbr))
    return INFINITY


def dijkstra_all(network: RoadNetwork, source: int, t: float = 0.0,
                 weight: Optional[WeightFunction] = None,
                 cutoff: Optional[float] = None) -> Dict[int, float]:
    """Single-source quickest-path lengths from ``source`` to every node.

    ``cutoff`` stops the search once the frontier distance exceeds it, which
    keeps workload statistics and index construction cheap on large networks.
    """
    weight = weight or _edge_weight_fn(network, t)
    dist: Dict[int, float] = {source: 0.0}
    final: Dict[int, float] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in final:
            continue
        if cutoff is not None and d > cutoff:
            break
        final[node] = d
        for nbr, _ in network.neighbors(node):
            if nbr in final:
                continue
            nd = d + weight(node, nbr)
            if nd < dist.get(nbr, INFINITY):
                dist[nbr] = nd
                heapq.heappush(heap, (nd, nbr))
    return final


def dijkstra_all_reverse(network: RoadNetwork, target: int, t: float = 0.0,
                         cutoff: Optional[float] = None) -> Dict[int, float]:
    """Quickest-path lengths from every node *to* ``target`` (reverse search)."""
    dist: Dict[int, float] = {target: 0.0}
    final: Dict[int, float] = {}
    heap: List[Tuple[float, int]] = [(0.0, target)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in final:
            continue
        if cutoff is not None and d > cutoff:
            break
        final[node] = d
        for pred, _ in network.predecessors(node):
            if pred in final:
                continue
            nd = d + network.edge_time(pred, node, t)
            if nd < dist.get(pred, INFINITY):
                dist[pred] = nd
                heapq.heappush(heap, (nd, pred))
    return final


def shortest_path_nodes(network: RoadNetwork, source: int, target: int,
                        t: float = 0.0) -> List[int]:
    """Return the node sequence of a quickest path from ``source`` to ``target``.

    Raises :class:`ValueError` when no path exists.  The simulator uses the
    expanded node sequence to move vehicles edge by edge so that their
    positions (and hence bearings) stay consistent with the road network.
    """
    if source == target:
        return [source]
    weight = _edge_weight_fn(network, t)
    dist: Dict[int, float] = {source: 0.0}
    parent: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited: set = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == target:
            break
        for nbr, _ in network.neighbors(node):
            if nbr in visited:
                continue
            nd = d + weight(node, nbr)
            if nd < dist.get(nbr, INFINITY):
                dist[nbr] = nd
                parent[nbr] = node
                heapq.heappush(heap, (nd, nbr))
    if target not in visited:
        raise ValueError(f"no path from {source} to {target}")
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def shortest_path_length(network: RoadNetwork, source: int, target: int,
                         t: float = 0.0) -> float:
    """Alias of :func:`dijkstra` with the paper's ``SP(u, v, t)`` semantics."""
    return dijkstra(network, source, target, t)


class BestFirstExplorer:
    """Incremental best-first search from a single source node.

    Alg. 2 of the paper expands road-network nodes around each vehicle in
    ascending order of (blended) cost, stopping as soon as the vehicle has
    acquired ``k`` candidate batches.  This class exposes that expansion as a
    lazy iterator: each call to :meth:`__next__` pops the next node in cost
    order, so the FoodGraph builder can stop early without wasting work.

    ``weight`` may be any non-negative edge weight function; FoodMatch passes
    the vehicle-sensitive weight ``alpha(v, e, t)`` of Eq. 8, while the plain
    sparsifier passes ``beta(e, t)``.
    """

    def __init__(self, network: RoadNetwork, source: int,
                 weight: Optional[WeightFunction] = None, t: float = 0.0) -> None:
        self._network = network
        self._weight = weight or _edge_weight_fn(network, t)
        self._dist: Dict[int, float] = {source: 0.0}
        self._heap: List[Tuple[float, int]] = [(0.0, source)]
        self._visited: set = set()

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        return self

    def __next__(self) -> Tuple[int, float]:
        """Return the next ``(node, cost)`` pair in ascending cost order."""
        while self._heap:
            d, node = heapq.heappop(self._heap)
            if node in self._visited:
                continue
            self._visited.add(node)
            for nbr, _ in self._network.neighbors(node):
                if nbr in self._visited:
                    continue
                nd = d + self._weight(node, nbr)
                if nd < self._dist.get(nbr, INFINITY):
                    self._dist[nbr] = nd
                    heapq.heappush(self._heap, (nd, nbr))
            return node, d
        raise StopIteration

    @property
    def visited_count(self) -> int:
        """Number of nodes settled so far (an efficiency statistic)."""
        return len(self._visited)


__all__ = [
    "dijkstra",
    "dijkstra_all",
    "dijkstra_all_reverse",
    "shortest_path_nodes",
    "shortest_path_length",
    "BestFirstExplorer",
    "WeightFunction",
    "INFINITY",
]
