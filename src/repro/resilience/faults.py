"""Seeded, scenario-declarable fault injection for resilience testing.

Production failure modes don't wait for production: this module lets tests,
benchmarks and the CLI declare deterministic faults — kernel slowdowns,
backends that vanish or start raising, shard workers that die — and have the
harness trip them at exact simulated times.  A :class:`FaultPlan` is a list
of :class:`FaultSpec` entries; the :class:`FaultInjector` owns the plan at
run time, activating and deactivating specs as the simulation clock passes
their windows.

Fault kinds
-----------
``slowdown``
    Sleep ``seconds`` (plus optional seeded jitter) inside the timed region
    of the target kernel.  ``rung`` scopes it to one backend rung, which is
    what lets the ladder *escape* the fault by demoting — a slowdown pinned
    to ``scipy`` does not slow ``greedy_approx`` down.
``backend_error``
    Make a rung unusable.  ``mode="import"`` reports the rung unavailable at
    selection time (as if its import had failed); ``mode="raise"`` lets the
    rung be selected and then raises :class:`InjectedFault` mid-call, so the
    ladder's failure path (mark unavailable, retry next rung) is exercised.
``kill_worker``
    Kill the resident shard-pool worker process named by ``target`` (once
    per activation), exercising the dead-worker detection and lossless
    restart in :class:`repro.service.shards.ShardPool`.

Plans parse from JSON (inline text or a file path) so ``--faults`` can take
either; everything is frozen and seeded, so a faulted run is reproducible
bit for bit.
"""

from __future__ import annotations

import json
import math
import random
import time
from dataclasses import dataclass, field
from collections.abc import Mapping

FAULT_KINDS = ("slowdown", "backend_error", "kill_worker")

#: Valid ``target`` values for backend faults (``kill_worker`` targets are
#: shard names and are not validated here).
_BACKEND_TARGETS = ("matching", "path")


class InjectedFault(RuntimeError):
    """Raised by a ``backend_error`` fault with ``mode="raise"``."""


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault.

    ``start``/``end`` are simulated seconds-of-day bounding the active
    window (``end`` defaults to "forever").  ``target`` is ``"matching"`` or
    ``"path"`` for backend faults, a shard/city name for ``kill_worker``.
    ``rung`` scopes slowdowns and errors to one ladder rung (``None`` = all
    rungs of the target ladder).
    """

    kind: str
    target: str
    start: float = 0.0
    end: float = math.inf
    seconds: float = 0.0
    rung: str | None = None
    mode: str = "import"
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if self.kind in ("slowdown", "backend_error") \
                and self.target not in _BACKEND_TARGETS:
            raise ValueError(f"{self.kind} fault target must be one of "
                             f"{_BACKEND_TARGETS}, got {self.target!r}")
        if self.mode not in ("import", "raise"):
            raise ValueError(f"backend_error mode must be 'import' or "
                             f"'raise', got {self.mode!r}")
        if self.end < self.start:
            raise ValueError("fault window end precedes start")

    def active_at(self, now: float) -> bool:
        return self.start <= now < self.end

    def as_dict(self) -> dict:
        spec = {"kind": self.kind, "target": self.target,
                "start": self.start, "seconds": self.seconds,
                "rung": self.rung, "mode": self.mode, "jitter": self.jitter}
        spec["end"] = "inf" if math.isinf(self.end) else self.end
        return spec


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered collection of fault specs."""

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def parse(cls, source) -> FaultPlan:
        """Build a plan from a plan, spec list, dict, JSON text, or file path.

        Accepted shapes: a :class:`FaultPlan` (returned as-is), a sequence
        of :class:`FaultSpec`/dict entries, ``{"faults": [...]}``, a JSON
        string of either, or a filesystem path to such JSON.
        """
        if isinstance(source, FaultPlan):
            return source
        if source is None:
            return cls()
        if isinstance(source, str):
            text = source.strip()
            if not text.startswith(("[", "{")):
                with open(source, encoding="utf-8") as fh:
                    text = fh.read()
            source = json.loads(text)
        if isinstance(source, Mapping):
            source = source.get("faults", [])
        specs = []
        for entry in source:
            if isinstance(entry, FaultSpec):
                specs.append(entry)
                continue
            entry = dict(entry)
            if entry.get("end") in ("inf", None):
                entry.pop("end", None)
            specs.append(FaultSpec(**entry))
        return cls(tuple(specs))

    def as_dict(self) -> dict:
        return {"faults": [spec.as_dict() for spec in self.specs]}


class FaultInjector:
    """Trips the declared faults as simulated time advances.

    The engine calls :meth:`advance` at the top of every window; kernels ask
    :meth:`slowdown_seconds` / :meth:`rung_blocked` at call time; the shard
    pool drains :meth:`pending_worker_kills`.  Jitter draws from a private
    seeded stream so faulted runs replay identically.
    """

    def __init__(self, plan: FaultPlan | None = None, seed: int = 0) -> None:
        self.plan = plan or FaultPlan()
        self._rng = random.Random(seed ^ 0x5EEDFA17)
        self._now = -math.inf
        self._active: list[FaultSpec] = []
        self._fired_kills: set[int] = set()
        self._pending_kills: list[str] = []
        self.trips = 0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, now: float) -> None:
        """Move the fault clock to ``now``, (de)activating specs."""
        self._now = now
        self._active = [spec for spec in self.plan.specs if spec.active_at(now)]
        for i, spec in enumerate(self.plan.specs):
            if spec.kind == "kill_worker" and spec.active_at(now) \
                    and i not in self._fired_kills:
                self._fired_kills.add(i)
                self._pending_kills.append(spec.target)

    def _matches(self, spec: FaultSpec, target: str, rung: str | None) -> bool:
        return spec.target == target and (spec.rung is None or rung is None
                                          or spec.rung == rung)

    def slowdown_seconds(self, target: str, rung: str | None = None) -> float:
        """Total injected delay for one call on ``target`` at ``rung``."""
        total = 0.0
        for spec in self._active:
            if spec.kind == "slowdown" and self._matches(spec, target, rung):
                total += spec.seconds
                if spec.jitter:
                    total += self._rng.uniform(0.0, spec.jitter)
        return total

    def sleep(self, target: str, rung: str | None = None) -> float:
        """Sleep the injected delay (inside the caller's timed region)."""
        seconds = self.slowdown_seconds(target, rung)
        if seconds > 0.0:
            self.trips += 1
            time.sleep(seconds)
        return seconds

    def rung_blocked(self, target: str, rung: str) -> str | None:
        """The active ``backend_error`` mode for this rung, or ``None``."""
        for spec in self._active:
            if spec.kind == "backend_error" and self._matches(spec, target, rung):
                return spec.mode
        return None

    def check_raise(self, target: str, rung: str) -> None:
        """Raise :class:`InjectedFault` if a ``raise``-mode fault is active."""
        if self.rung_blocked(target, rung) == "raise":
            self.trips += 1
            raise InjectedFault(f"injected {target} backend fault on rung "
                                f"{rung!r} at t={self._now:.0f}")

    def pending_worker_kills(self) -> list[str]:
        """Drain the shard names whose workers should be killed now."""
        kills, self._pending_kills = self._pending_kills, []
        return kills

    def snapshot(self) -> dict:
        return {
            "declared": len(self.plan.specs),
            "active": [spec.as_dict() for spec in self._active],
            "trips": self.trips,
        }


__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
]
