"""The ambient ladder-registry stack, dependency-free.

Low-level kernels (the matching solve in :mod:`repro.core.foodgraph`, the
query paths of :class:`repro.network.distance_oracle.DistanceOracle`) look
up the active :class:`~repro.resilience.ladder.LadderRegistry` here.  This
module imports nothing from the rest of the package — the kernels sit far
below :mod:`repro.resilience.ladder` in the import graph, and routing the
lookup through a leaf module is what keeps the dependency arrows pointing
one way.

Same idiom as :func:`repro.obs.trace.use_tracer`: a plain module-global
stack, correct because simulations are single-threaded per process, with
``None`` (no registry, exact single-backend code paths) as the default.
"""

from __future__ import annotations

from contextlib import contextmanager
from collections.abc import Iterator

_ACTIVE_LADDERS: list = [None]


def current_ladders():
    """The innermost active :class:`LadderRegistry` (``None`` by default)."""
    return _ACTIVE_LADDERS[-1]


@contextmanager
def use_ladders(registry) -> Iterator:
    """Install ``registry`` as the active ladder registry for the block."""
    _ACTIVE_LADDERS.append(registry)
    try:
        yield registry
    finally:
        _ACTIVE_LADDERS.pop()


__all__ = ["current_ladders", "use_ladders"]
