"""Backend ladders: ranked rungs per kernel, with explicit degradation state.

A :class:`BackendLadder` is an ordered list of backend rungs, best first,
with two separate notions of "where we are":

``position``
    Where the *controller* (or a CLI pin) has placed the ladder.  Moves only
    through :meth:`step_down` / :meth:`step_up`.
``effective rung``
    What :meth:`select` actually returns — the first *available* rung at or
    below ``position``.  Availability reflects real import failures and
    injected faults, so the effective rung can sit below the position (and
    climbs back by itself when the fault clears).  Demotion/recovery
    counters track effective-rung transitions, whichever mechanism moved
    them.

The :class:`LadderRegistry` bundles the matching and path ladders behind the
call sites' interface: :meth:`LadderRegistry.solve_matching` wraps the
sparse matching solve (degrade-and-retry on backend failure, never on input
errors) and :meth:`LadderRegistry.path_rung` tells the
:class:`~repro.network.distance_oracle.DistanceOracle` which rung to answer
with.  Quality deltas — greedy matching objective vs the exact solver, and
approximate path stretch — are shadow-sampled so every degraded window
reports what the latency it bought back actually cost.

Call sites find the active registry through the same module-global stack
idiom as :func:`repro.obs.trace.use_tracer`: ``current_ladders()`` is
``None`` by default, and every touched code path is bit-pristine in that
case.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence

from repro.core.matching import (
    MATCHING_RUNGS,
    MatchingError,
    matching_backend_available,
    sparse_matching_objective,
    sparse_minimum_weight_matching,
)
from repro.network.approx_paths import PATH_RUNGS, path_backend_available
from repro.resilience.context import current_ladders, use_ladders
from repro.resilience.faults import FaultInjector


class BackendLadder:
    """Ordered backend rungs with availability, counters, and history."""

    def __init__(self, name: str, rungs: Sequence[str],
                 start: str | None = None) -> None:
        if not rungs:
            raise ValueError("a ladder needs at least one rung")
        self.name = name
        self.rungs = tuple(rungs)
        if start is not None and start not in self.rungs:
            raise ValueError(f"unknown {name} rung {start!r}; "
                             f"expected one of {self.rungs}")
        #: Recovery ceiling: a CLI pin starts (and keeps) the ladder here.
        self.floor = 0 if start is None else self.rungs.index(start)
        #: Controller-chosen index; the effective rung never sits above it.
        self.position = self.floor
        self.demotions = 0
        self.recoveries = 0
        self.calls = dict.fromkeys(self.rungs, 0)
        self.failures = dict.fromkeys(self.rungs, 0)
        self.seconds = dict.fromkeys(self.rungs, 0.0)
        self._unavailable: dict[str, str] = {}
        self._current = self.position
        self.history: list[dict] = []
        self._history_limit = 256

    # -- availability ---------------------------------------------------- #
    def is_available(self, rung: str) -> bool:
        return rung not in self._unavailable

    def mark_unavailable(self, rung: str, reason: str) -> None:
        self._unavailable[rung] = reason

    def mark_available(self, rung: str) -> None:
        self._unavailable.pop(rung, None)

    # -- selection ------------------------------------------------------- #
    def select(self) -> str:
        """The effective rung: first available rung at or below position.

        Records a demotion/recovery event whenever the effective rung moved
        since the last selection — this is the single place transitions are
        counted, so availability-driven moves (a fault clearing) and
        controller moves both land in the same counters.
        """
        chosen = None
        for idx in range(self.position, len(self.rungs)):
            if self.is_available(self.rungs[idx]):
                chosen = idx
                break
        if chosen is None:
            raise RuntimeError(
                f"no available {self.name} backend rung at or below "
                f"{self.rungs[self.position]!r}: "
                f"{dict(self._unavailable)}")
        if chosen != self._current:
            kind = "demotion" if chosen > self._current else "recovery"
            if kind == "demotion":
                self.demotions += 1
            else:
                self.recoveries += 1
            event = {"event": kind, "from": self.rungs[self._current],
                     "to": self.rungs[chosen]}
            self.history.append(event)
            del self.history[:-self._history_limit]
            self._current = chosen
        return self.rungs[chosen]

    @property
    def current(self) -> str:
        """The most recently selected effective rung."""
        return self.rungs[self._current]

    def step_down(self) -> bool:
        """Controller demotion: move the position one rung down."""
        if self.position + 1 >= len(self.rungs):
            return False
        self.position += 1
        return True

    def step_up(self) -> bool:
        """Controller recovery: move the position one rung up (to the floor).

        Refuses to land the position on an unavailable rung — probing an
        unimportable backend would only bounce straight back down.
        """
        if self.position <= self.floor:
            return False
        target = self.position - 1
        while target > self.floor and not self.is_available(self.rungs[target]):
            target -= 1
        if not self.is_available(self.rungs[target]):
            return False
        self.position = target
        return True

    # -- accounting ------------------------------------------------------ #
    def record(self, rung: str, seconds: float) -> None:
        self.calls[rung] += 1
        self.seconds[rung] += seconds

    def record_failure(self, rung: str) -> None:
        self.failures[rung] += 1

    def snapshot(self) -> dict:
        return {
            "rungs": list(self.rungs),
            "floor": self.rungs[self.floor],
            "position": self.rungs[self.position],
            "current": self.current,
            "demotions": self.demotions,
            "recoveries": self.recoveries,
            "calls": dict(self.calls),
            "failures": dict(self.failures),
            "seconds": {rung: round(value, 6)
                        for rung, value in self.seconds.items()},
            "unavailable": dict(self._unavailable),
            "history": list(self.history[-16:]),
        }


class LadderRegistry:
    """The matching and path ladders, plus shadow-sampled quality deltas.

    Parameters
    ----------
    matching_start, path_start:
        Optional CLI pins: start (and keep the recovery ceiling) at the
        named rung instead of the top.
    injector:
        Optional :class:`~repro.resilience.faults.FaultInjector` whose
        slowdowns and backend errors this registry honours.
    quality_sample_every:
        Run the exact solver in the shadow of every Nth degraded matching
        call (and sample path stretch at the same rate) to measure the
        quality delta without paying exact cost on every call.
    """

    def __init__(self, matching_start: str | None = None,
                 path_start: str | None = None,
                 injector: FaultInjector | None = None,
                 quality_sample_every: int = 8) -> None:
        self.matching = BackendLadder("matching", MATCHING_RUNGS,
                                      start=matching_start)
        self.path = BackendLadder("path", PATH_RUNGS, start=path_start)
        self.injector = injector
        self.quality_sample_every = max(1, quality_sample_every)
        # In-call failures stick until the fault window that caused them
        # closes (see _sync_availability), so one raise-mode fault does not
        # cost an exception per call.
        self._failed: dict[tuple[str, str], str] = {}
        self.matching_quality_samples = 0
        self.matching_exact_objective = 0.0
        self.matching_actual_objective = 0.0
        self._path_approx_queries = 0
        self.path_stretch_samples = 0
        self.path_stretch_sum = 0.0

    # -- availability sync ----------------------------------------------- #
    def _sync_availability(self, ladder: BackendLadder, target: str,
                           native_available) -> None:
        injector = self.injector
        for rung in ladder.rungs:
            mode = injector.rung_blocked(target, rung) if injector else None
            if mode is None:
                self._failed.pop((target, rung), None)
            if not native_available(rung):
                ladder.mark_unavailable(rung, "backend not importable")
            elif mode == "import":
                ladder.mark_unavailable(rung, "injected import failure")
            elif mode == "raise" and target == "path":
                # Path queries are too numerous to pay a try/except ladder
                # per call; raise-mode path faults degrade at selection
                # time, like an import failure.
                ladder.mark_unavailable(rung, "injected backend fault")
            elif (target, rung) in self._failed:
                ladder.mark_unavailable(rung, self._failed[(target, rung)])
            else:
                ladder.mark_available(rung)

    # -- matching -------------------------------------------------------- #
    def solve_matching(self, num_rows: int, num_cols: int,
                       edges: Mapping[tuple[int, int], float],
                       omega: float) -> list[tuple[int, int]]:
        """Ladder-aware :func:`sparse_minimum_weight_matching`.

        Injected slowdowns land *inside* the timed region (they are what the
        controller reacts to).  A rung that raises is marked unavailable and
        the solve retries one rung down — except for
        :class:`~repro.core.matching.MatchingError`, which is an input
        error no backend can fix and is re-raised immediately.
        """
        ladder = self.matching
        injector = self.injector
        self._sync_availability(ladder, "matching", matching_backend_available)
        while True:
            rung = ladder.select()
            began = time.perf_counter()
            try:
                if injector is not None:
                    injector.sleep("matching", rung)
                    injector.check_raise("matching", rung)
                pairs = sparse_minimum_weight_matching(
                    num_rows, num_cols, edges, omega, backend=rung)
            except MatchingError:
                raise
            except Exception as exc:
                ladder.record_failure(rung)
                reason = f"{type(exc).__name__}: {exc}"
                self._failed[("matching", rung)] = reason
                ladder.mark_unavailable(rung, reason)
                if rung == ladder.rungs[-1]:
                    raise
                continue
            ladder.record(rung, time.perf_counter() - began)
            if rung != ladder.rungs[0] and edges \
                    and (ladder.calls[rung] - 1) % self.quality_sample_every == 0:
                self._sample_matching_quality(num_rows, num_cols, edges,
                                              omega, pairs)
            return pairs

    def _sample_matching_quality(self, num_rows: int, num_cols: int,
                                 edges: Mapping[tuple[int, int], float],
                                 omega: float,
                                 pairs: Sequence[tuple[int, int]]) -> None:
        """Shadow-solve exactly (outside the timed region) and compare."""
        try:
            exact = sparse_minimum_weight_matching(num_rows, num_cols,
                                                   edges, omega)
        except Exception:  # the exact backend is the one that is degraded
            return
        self.matching_quality_samples += 1
        self.matching_exact_objective += sparse_matching_objective(
            num_rows, num_cols, edges, omega, exact)
        self.matching_actual_objective += sparse_matching_objective(
            num_rows, num_cols, edges, omega, pairs)

    # -- shortest paths -------------------------------------------------- #
    def path_rung(self, oracle) -> str:
        """The effective path rung for this oracle's next resolution."""
        self._sync_availability(
            self.path, "path",
            lambda rung: path_backend_available(rung, oracle))
        rung = self.path.select()
        if self.injector is not None:
            self.injector.sleep("path", rung)
        return rung

    def record_path(self, rung: str, seconds: float) -> None:
        self.path.record(rung, seconds)

    def take_path_sample(self) -> bool:
        """Whether the oracle should shadow-sample this approx resolution."""
        self._path_approx_queries += 1
        return (self._path_approx_queries - 1) % self.quality_sample_every == 0

    def record_path_stretch(self, approx: float, exact: float) -> None:
        if exact <= 0.0 or approx != approx or exact != exact \
                or approx == float("inf") or exact == float("inf"):
            return
        self.path_stretch_samples += 1
        self.path_stretch_sum += approx / exact

    # -- reporting ------------------------------------------------------- #
    @property
    def matching_quality_delta_pct(self) -> float:
        """Degraded-minus-exact matching objective, percent of exact."""
        if not self.matching_quality_samples or not self.matching_exact_objective:
            return 0.0
        return 100.0 * (self.matching_actual_objective
                        - self.matching_exact_objective) \
            / self.matching_exact_objective

    @property
    def path_mean_stretch(self) -> float:
        if not self.path_stretch_samples:
            return 1.0
        return self.path_stretch_sum / self.path_stretch_samples

    def snapshot(self) -> dict:
        snap = {
            "matching": self.matching.snapshot(),
            "path": self.path.snapshot(),
            "quality": {
                "matching_samples": self.matching_quality_samples,
                "matching_exact_objective": round(
                    self.matching_exact_objective, 6),
                "matching_actual_objective": round(
                    self.matching_actual_objective, 6),
                "matching_delta_pct": round(
                    self.matching_quality_delta_pct, 4),
                "path_samples": self.path_stretch_samples,
                "path_mean_stretch": round(self.path_mean_stretch, 6),
            },
        }
        if self.injector is not None:
            snap["faults"] = self.injector.snapshot()
        return snap

    @staticmethod
    def _settle(counter, value: float) -> None:
        # Counters only expose inc(); settle to an absolute value so folding
        # repeatedly (service stats polls) stays idempotent.
        counter.inc(value - counter.value)

    def fold_into(self, registry) -> None:
        """Publish ladder state into an :class:`obs.metrics.MetricsRegistry`."""
        for ladder in (self.matching, self.path):
            registry.gauge("resilience.rung", ladder=ladder.name).set(
                ladder.rungs.index(ladder.current))
            self._settle(registry.counter("resilience.demotions",
                                          ladder=ladder.name),
                         float(ladder.demotions))
            self._settle(registry.counter("resilience.recoveries",
                                          ladder=ladder.name),
                         float(ladder.recoveries))
            for rung in ladder.rungs:
                self._settle(registry.counter("resilience.calls",
                                              ladder=ladder.name, rung=rung),
                             float(ladder.calls[rung]))
                self._settle(registry.counter("resilience.failures",
                                              ladder=ladder.name, rung=rung),
                             float(ladder.failures[rung]))
                self._settle(registry.counter("resilience.seconds",
                                              ladder=ladder.name, rung=rung),
                             ladder.seconds[rung])
        registry.gauge("resilience.matching_quality_delta_pct").set(
            self.matching_quality_delta_pct)
        registry.gauge("resilience.path_mean_stretch").set(
            self.path_mean_stretch)


__all__ = [
    "BackendLadder",
    "LadderRegistry",
    "current_ladders",
    "use_ladders",
]
