"""One object that owns a run's resilience machinery.

:class:`ResilienceManager` bundles the fault injector, the backend ladder
registry and the degradation controller behind the two hooks the engine
calls per window (:meth:`begin_window` / :meth:`end_window`) and the
snapshot/fold surfaces the telemetry layer reads.  :func:`build_resilience`
is the factory every entry point (CLI, experiment runner, dispatch service)
uses: it returns ``None`` when nothing resilience-related was requested, so
the default path installs no ladders at all and stays bit-identical to a
build without this package.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience.controller import DegradationConfig, DegradationController
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.ladder import LadderRegistry


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything :class:`ResilienceManager` needs, in one frozen record.

    ``faults`` accepts whatever :meth:`FaultPlan.parse` accepts (a plan, a
    spec list, JSON text, or a path).  ``matching_backend``/``path_backend``
    pin the respective ladder's starting rung.
    """

    matching_backend: str | None = None
    path_backend: str | None = None
    latency_budget: float | None = None
    demote_after: int = 3
    recover_after: int = 5
    recovery_margin: float = 0.5
    cooldown_windows: int = 2
    faults: object = None
    seed: int = 0
    quality_sample_every: int = 8


class ResilienceManager:
    """Fault injector + ladders + controller, wired for one run."""

    def __init__(self, config: ResilienceConfig | None = None) -> None:
        self.config = config or ResilienceConfig()
        plan = FaultPlan.parse(self.config.faults)
        self.injector = FaultInjector(plan, seed=self.config.seed) if plan else None
        self.ladders = LadderRegistry(
            matching_start=self.config.matching_backend,
            path_start=self.config.path_backend,
            injector=self.injector,
            quality_sample_every=self.config.quality_sample_every)
        self.controller = DegradationController(
            DegradationConfig(
                latency_budget=self.config.latency_budget,
                demote_after=self.config.demote_after,
                recover_after=self.config.recover_after,
                recovery_margin=self.config.recovery_margin,
                cooldown_windows=self.config.cooldown_windows),
            self.ladders)

    # -- engine hooks ---------------------------------------------------- #
    def begin_window(self, now: float) -> None:
        """Advance the fault clock to the window's start time."""
        if self.injector is not None:
            self.injector.advance(now)

    def end_window(self, decision_seconds: float) -> None:
        """Feed the window's decision latency to the controller."""
        self.controller.observe_window(decision_seconds)

    # -- backpressure composition ----------------------------------------- #
    def degradation_headroom(self) -> bool:
        """True while the controller can still buy latency by demoting.

        This is the degrade-then-defer-then-shed probe: backpressure holds
        off deferring/shedding while the ladder has rungs left to give.
        """
        return self.controller.enabled and self.controller.has_headroom()

    # -- reporting -------------------------------------------------------- #
    def snapshot(self) -> dict:
        snap = self.ladders.snapshot()
        snap["controller"] = self.controller.snapshot()
        return snap

    def fold_into(self, registry) -> None:
        self.ladders.fold_into(registry)

    def telemetry_meta(self) -> dict:
        """The compact summary stamped into ``Telemetry.meta``."""
        ladders = self.ladders
        return {
            "matching_rung": ladders.matching.current,
            "path_rung": ladders.path.current,
            "demotions": ladders.matching.demotions + ladders.path.demotions,
            "recoveries": (ladders.matching.recoveries
                           + ladders.path.recoveries),
            "matching_quality_delta_pct": round(
                ladders.matching_quality_delta_pct, 4),
            "path_mean_stretch": round(ladders.path_mean_stretch, 6),
            "latency_budget": self.config.latency_budget,
            "controller_events": len(self.controller.events),
        }


def build_resilience(matching_backend: str | None = None,
                     path_backend: str | None = None,
                     latency_budget: float | None = None,
                     faults: object = None,
                     seed: int = 0,
                     **knobs) -> ResilienceManager | None:
    """Build a manager, or ``None`` when no resilience feature is requested.

    The ``None`` return is load-bearing: without a manager the engine
    installs no ladder registry and every touched code path short-circuits
    on ``current_ladders() is None``, keeping default runs bit-identical.
    """
    plan = FaultPlan.parse(faults)
    if matching_backend is None and path_backend is None \
            and latency_budget is None and not plan:
        return None
    return ResilienceManager(ResilienceConfig(
        matching_backend=matching_backend, path_backend=path_backend,
        latency_budget=latency_budget, faults=plan, seed=seed, **knobs))


__all__ = ["ResilienceConfig", "ResilienceManager", "build_resilience"]
