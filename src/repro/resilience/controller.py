"""The latency-budget degradation controller.

Watches the per-window decision latency against a configurable budget and
moves the backend ladders with hysteresis:

* **Demote** after ``demote_after`` *consecutive* windows over budget —
  matching first (it dominates the decide phase), then paths.
* **Recover** after ``recover_after`` consecutive windows comfortably under
  budget (at or below ``budget * recovery_margin``) — paths first, then
  matching, i.e. the reverse order, so the cheapest quality give-back is
  restored first and the last rung demoted is the first recovered.
* Windows in the band between the two thresholds reset *both* streaks, and
  ``cooldown_windows`` must pass after any move before the next one — the
  two mechanisms that keep the ladder from flapping at the budget boundary.

The controller never touches the code path when no budget is configured
(:attr:`DegradationController.enabled` is false), which keeps unbudgeted
runs bit-pristine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience.ladder import LadderRegistry


@dataclass(frozen=True)
class DegradationConfig:
    """Knobs for :class:`DegradationController`.

    ``latency_budget`` is the per-window decision budget in seconds
    (``None`` disables the controller).  ``recovery_margin`` scales the
    budget down to the "comfortably under" threshold that recovery windows
    must clear.
    """

    latency_budget: float | None = None
    demote_after: int = 3
    recover_after: int = 5
    recovery_margin: float = 0.5
    cooldown_windows: int = 2

    def __post_init__(self) -> None:
        if self.latency_budget is not None and self.latency_budget <= 0.0:
            raise ValueError("latency budget must be positive")
        if self.demote_after < 1 or self.recover_after < 1:
            raise ValueError("hysteresis window counts must be >= 1")
        if not 0.0 < self.recovery_margin <= 1.0:
            raise ValueError("recovery margin must be in (0, 1]")


class DegradationController:
    """Moves the ladders' positions from per-window latency observations."""

    def __init__(self, config: DegradationConfig,
                 ladders: LadderRegistry) -> None:
        self.config = config
        self.ladders = ladders
        self.windows_observed = 0
        self.over_streak = 0
        self.healthy_streak = 0
        self._cooldown = 0
        #: ``{"window": int, "kind": "demote"|"recover", "ladder": str,
        #:  "to": rung}`` for every move, for tests and BENCH_PR9.
        self.events: list[dict] = []

    @property
    def enabled(self) -> bool:
        return self.config.latency_budget is not None

    def has_headroom(self) -> bool:
        """Whether any ladder can still demote (degrade-before-defer probe)."""
        matching = self.ladders.matching
        path = self.ladders.path
        return (matching.position + 1 < len(matching.rungs)
                or path.position + 1 < len(path.rungs))

    def observe_window(self, decision_seconds: float) -> None:
        """Feed one window's decision latency; may move a ladder."""
        if not self.enabled:
            return
        self.windows_observed += 1
        budget = self.config.latency_budget
        if decision_seconds > budget:
            self.over_streak += 1
            self.healthy_streak = 0
        elif decision_seconds <= budget * self.config.recovery_margin:
            self.healthy_streak += 1
            self.over_streak = 0
        else:
            # The ambiguous band: neither blown nor comfortably healthy.
            self.over_streak = 0
            self.healthy_streak = 0
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        if self.over_streak >= self.config.demote_after:
            self._demote()
        elif self.healthy_streak >= self.config.recover_after:
            self._recover()

    def _record(self, kind: str, ladder) -> None:
        self.events.append({"window": self.windows_observed, "kind": kind,
                            "ladder": ladder.name,
                            "to": ladder.rungs[ladder.position]})
        self.over_streak = 0
        self.healthy_streak = 0
        self._cooldown = self.config.cooldown_windows

    def _demote(self) -> None:
        for ladder in (self.ladders.matching, self.ladders.path):
            if ladder.step_down():
                self._record("demote", ladder)
                return

    def _recover(self) -> None:
        for ladder in (self.ladders.path, self.ladders.matching):
            if ladder.step_up():
                self._record("recover", ladder)
                return

    def snapshot(self) -> dict:
        return {
            "enabled": self.enabled,
            "latency_budget": self.config.latency_budget,
            "windows_observed": self.windows_observed,
            "over_streak": self.over_streak,
            "healthy_streak": self.healthy_streak,
            "cooldown": self._cooldown,
            "events": list(self.events),
        }


__all__ = ["DegradationConfig", "DegradationController"]
