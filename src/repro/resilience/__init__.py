"""Graceful degradation under load: ladders, budget control, fault injection.

This package is the robustness layer of the reproduction.  Every latency-
critical kernel sits on a *backend ladder* — matching on
``scipy -> hungarian -> greedy_approx``, shortest paths on
``hub_labels -> dijkstra -> bounded_hop_approx`` — and a *degradation
controller* walks those ladders against a per-window latency budget,
recording the quality each demotion gives up next to the latency it buys
back.  A seeded *fault-injection harness* (kernel slowdowns, backends that
vanish or raise, shard-worker kills) makes the whole degrade/recover cycle
deterministically testable.

The composition rule with the dispatch service's backpressure (PR 8) is
**degrade, then defer, then shed**: quality is the cheapest thing to give
up, latency the second, and work the last.

Nothing here is active by default — :func:`build_resilience` returns
``None`` unless a backend pin, a budget, or a fault plan was requested, and
every hooked code path short-circuits on ``current_ladders() is None``, so
unconfigured runs remain bit-identical to a build without this package.

Submodules resolve lazily (PEP 562): low-level kernels import only the
dependency-free :mod:`repro.resilience.context`, and nothing here drags the
core/network packages in at import time — that is what keeps this package
importable from both ends of the dependency graph.
"""

from repro.resilience.context import current_ladders, use_ladders

_LAZY = {
    "BackendLadder": "ladder",
    "LadderRegistry": "ladder",
    "DegradationConfig": "controller",
    "DegradationController": "controller",
    "FAULT_KINDS": "faults",
    "FaultInjector": "faults",
    "FaultPlan": "faults",
    "FaultSpec": "faults",
    "InjectedFault": "faults",
    "ResilienceConfig": "manager",
    "ResilienceManager": "manager",
    "build_resilience": "manager",
}

__all__ = ["current_ladders", "use_ladders", *sorted(_LAZY)]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module
    return getattr(import_module(f"{__name__}.{module}"), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
