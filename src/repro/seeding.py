"""Deterministic hierarchical seed derivation.

Experiments fan out over a grid of (setting, policy, replicate) cells, and
each cell draws from several random streams (workload, traffic timeline,
fleet plan, driver behaviour).  Deriving those streams by arithmetic on the
base seed (``seed + 7919`` style offsets) has a latent collision: the
workload stream of the cell seeded ``s + 7919`` *is* the traffic stream of
the cell seeded ``s``, so two cells of one sweep can replay correlated
randomness.  The fix is the standard SeedSequence idea: derive child seeds
by hashing the full component path, so streams collide only if their paths
are equal.

:func:`spawn_seed` is that derivation, shared by the scenario generator and
the parallel experiment executor.  It is pure and process-independent
(SHA-256 over the ``repr`` of the components — no ``PYTHONHASHSEED``
dependence), which is what makes ``--jobs N`` sweeps bit-identical to
serial runs: every worker derives the same per-cell seeds from the same
cell coordinates.
"""

from __future__ import annotations

import hashlib

#: Seeds fit in 63 bits so they stay exact in every integer representation
#: (including engines that coerce through signed 64-bit or double floats).
_SEED_BITS = 63


def spawn_seed(*components: object) -> int:
    """Derive a deterministic child seed from a path of components.

    ``spawn_seed(base, "traffic")`` and ``spawn_seed(base, "fleet")`` are
    statistically independent streams for every ``base``, and unequal
    component paths never collide by construction (modulo SHA-256).
    Components may be anything with a stable ``repr`` (ints, strings,
    floats, tuples thereof).
    """
    if not components:
        raise ValueError("spawn_seed requires at least one component")
    text = "\x1f".join(repr(component) for component in components)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - _SEED_BITS)


__all__ = ["spawn_seed"]
