"""Public value types of the dispatch service's async API.

These are the shapes :class:`~repro.service.loop.DispatchService` hands to
clients: the admission receipt of ``submit_order``, the lifecycle view of
``order_status``, and the service-level error types.  They are plain frozen
dataclasses — picklable, comparable, loggable — so loadgen clients and
shard workers can ship them across process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.metrics import OrderOutcome

#: Admission receipt states, in decreasing order of happiness.
ADMISSION_STATES = ("accepted", "deferred", "shed")

#: Order lifecycle states reported by ``order_status``.
ORDER_STATES = ("unknown", "submitted", "pooled", "assigned", "picked_up",
                "delivered", "rejected")


class ServiceError(RuntimeError):
    """Base class of dispatch-service errors."""


class ServiceClosed(ServiceError):
    """The service has stopped (or finalized) and accepts no more work."""


@dataclass(frozen=True)
class Admission:
    """Receipt of one ``submit_order`` call.

    ``"accepted"`` — enqueued with headroom.  ``"deferred"`` — enqueued,
    but a backpressure signal was tripped at admission time (the call may
    have parked on the bounded queue); the producer should slow down.
    ``"shed"`` — rejected under the lossy policy; the order never reached
    the engine.
    """

    order_id: int
    status: str
    queue_depth: int

    @property
    def admitted(self) -> bool:
        return self.status != "shed"


@dataclass(frozen=True)
class OrderStatus:
    """Point-in-time lifecycle view of one order.

    ``state`` is one of :data:`ORDER_STATES`; the timestamps are simulated
    seconds (``None`` until the corresponding transition happened).
    """

    order_id: int
    state: str
    placed_at: float | None = None
    assigned_at: float | None = None
    picked_up_at: float | None = None
    delivered_at: float | None = None
    vehicle_id: int | None = None
    reassignments: int = 0

    @classmethod
    def from_outcome(cls, outcome: OrderOutcome) -> OrderStatus:
        """Collapse an engine :class:`OrderOutcome` into the API view."""
        if outcome.rejected:
            state = "rejected"
        elif outcome.delivered_at is not None:
            state = "delivered"
        elif outcome.picked_up_at is not None:
            state = "picked_up"
        elif outcome.vehicle_id is not None:
            state = "assigned"
        else:
            state = "pooled"
        return cls(
            order_id=outcome.order.order_id,
            state=state,
            placed_at=outcome.order.placed_at,
            assigned_at=outcome.assigned_at,
            picked_up_at=outcome.picked_up_at,
            delivered_at=outcome.delivered_at,
            vehicle_id=outcome.vehicle_id,
            reassignments=outcome.reassignments,
        )


__all__ = ["ADMISSION_STATES", "ORDER_STATES", "ServiceError",
           "ServiceClosed", "Admission", "OrderStatus"]
