"""The always-on dispatch service: the batch engine behind an async API.

:class:`DispatchService` hosts one city's :class:`~repro.sim.engine.Simulator`
(in ``order_source="external"`` mode) inside a long-lived asyncio loop:

* clients ``await submit_order(order)`` into a **bounded ingest queue**; a
  pump task drains it into the engine's arrival heap continuously, so
  ingestion never waits on window cadence,
* a :class:`~repro.service.clock_driver.ClockDriver` decides when each
  accumulation window fires — watermark-gated for deterministic replay
  (:class:`SimulatedClock`), paced against real time (:class:`WallClock`),
* the window body is the *same* :meth:`Simulator.step_window` batch mode
  runs, which is what makes a simulated-clock service run over a scenario's
  recorded order stream ``result_fingerprint``-identical to
  ``Simulator.run()`` (golden-tested),
* :meth:`checkpoint` freezes the world between windows;
  :meth:`from_checkpoint` resumes it bit-identically, and
* admission is governed by a :class:`BackpressureController` — defer
  (lossless) or shed (lossy) with visible counters.

Concurrency model: everything happens on one event loop, and
``step_window`` is synchronous — it blocks the loop for the duration of a
decision epoch.  That is a *feature* for determinism: ``stats()``,
``order_status()`` and ``checkpoint()`` can only ever observe
window-boundary states, never a half-stepped world, without any locking.
"""

from __future__ import annotations

import asyncio
import pathlib
from collections.abc import Mapping, Sequence

from repro.experiments.runner import build_policy
from repro.network.distance_oracle import DistanceOracle
from repro.obs.metrics import MetricsRegistry
from repro.orders.costs import CostModel
from repro.orders.order import Order
from repro.service.api import Admission, OrderStatus, ServiceClosed, ServiceError
from repro.service.backpressure import BackpressureConfig, BackpressureController
from repro.service.checkpoint import (
    load_checkpoint,
    policy_spec_from_checkpoint,
    restore_simulator,
    save_checkpoint,
    snapshot_simulator,
)
from repro.service.clock_driver import ClockDriver, SimulatedClock
from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.metrics import SimulationResult
from repro.workload.generator import Scenario


class DispatchService:
    """One city's dispatch engine as a resident asyncio service."""

    def __init__(self, scenario: Scenario, policy: str = "foodmatch",
                 policy_options: Mapping[str, object] | None = None, *,
                 config: SimulationConfig | None = None,
                 clock: ClockDriver | None = None,
                 backpressure: BackpressureConfig | None = None,
                 oracle: DistanceOracle | None = None,
                 registry: MetricsRegistry | None = None,
                 tracer=None, resilience=None) -> None:
        if oracle is None:
            oracle = DistanceOracle(scenario.network)
        elif getattr(scenario, "traffic", None):
            # A reused (cached) oracle may carry residual traffic overrides
            # from an earlier run; the engine's controller assumes the
            # pristine pre-traffic state.
            oracle.reset_traffic_state()
        cost_model = CostModel(oracle)
        options = dict(policy_options or {})
        policy_obj = build_policy(policy, cost_model, **options)
        engine = Simulator(scenario, policy_obj, cost_model, config,
                           tracer=tracer, order_source="external",
                           resilience=resilience)
        self._policy_name = policy
        self._policy_options = tuple(sorted(options.items()))
        self._finish_init(engine, clock, backpressure, registry)

    def _finish_init(self, engine: Simulator, clock: ClockDriver | None,
                     backpressure: BackpressureConfig | None,
                     registry: MetricsRegistry | None) -> None:
        self._engine = engine
        self._clock = clock or SimulatedClock()
        self._backpressure = BackpressureController(backpressure)
        self._registry = registry or MetricsRegistry()
        self._queue: asyncio.Queue[Order] = asyncio.Queue(
            maxsize=self._backpressure.config.queue_capacity)
        self._admitted_ids: set[int] = set()
        self._late_rejections = 0
        self._running = False
        self._result: SimulationResult | None = None
        manager = engine.resilience
        if manager is not None:
            # Degrade-then-defer-then-shed: while the ladder has headroom
            # the latency signal must not trip admission control.
            self._backpressure.attach_degradation_probe(
                manager.degradation_headroom)

    @classmethod
    def from_checkpoint(cls, source: Mapping | str | pathlib.Path, *,
                        clock: ClockDriver | None = None,
                        backpressure: BackpressureConfig | None = None,
                        oracle: DistanceOracle | None = None,
                        registry: MetricsRegistry | None = None,
                        tracer=None, resilience=None) -> DispatchService:
        """Resume a service from a :meth:`checkpoint` document or file.

        The restored service continues from the checkpoint's next window
        boundary; run to the horizon it is fingerprint-identical to the
        uninterrupted run (provided the client replays the not-yet-ingested
        tail of the order stream — see :func:`remaining_orders`).
        """
        payload = (source if isinstance(source, Mapping)
                   else load_checkpoint(source))
        engine = restore_simulator(payload, oracle=oracle, tracer=tracer)
        if resilience is not None:
            # Ladder state is runtime posture, not world state: a restored
            # service starts back at the configured rungs and re-degrades
            # if the conditions that forced a demotion still hold.
            engine.resilience = resilience
        name, options = policy_spec_from_checkpoint(payload)
        service = object.__new__(cls)
        service._policy_name = name
        service._policy_options = tuple(sorted(options.items()))
        service._finish_init(engine, clock, backpressure, registry)
        return service

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> Simulator:
        return self._engine

    @property
    def clock(self) -> ClockDriver:
        return self._clock

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    @property
    def result(self) -> SimulationResult | None:
        """The final metrics, once the horizon completed (else ``None``)."""
        return self._result

    # ------------------------------------------------------------------ #
    # async client API
    # ------------------------------------------------------------------ #
    async def submit_order(self, order: Order) -> Admission:
        """Admit one order; returns the admission receipt.

        Lossless path: the call parks on the bounded queue when full, which
        *is* the backpressure — a producer awaiting its receipts is slowed
        to the service's pace.  Under the ``"shed"`` policy a tripped
        signal rejects instead (receipt status ``"shed"``).
        """
        if self._engine.finalized or self._clock.stopped:
            raise ServiceClosed(
                "the dispatch service has stopped and accepts no more orders")
        controller = self._backpressure
        controller.submitted += 1
        depth = self._queue.qsize()
        if controller.should_shed(depth):
            controller.shed += 1
            self._registry.counter("service.shed").inc()
            return Admission(order.order_id, "shed", depth)
        status = "accepted"
        if self._queue.full() or controller.pressured(depth):
            status = "deferred"
            controller.deferred += 1
            self._registry.counter("service.deferred").inc()
        await self._queue.put(order)
        controller.admitted += 1
        self._admitted_ids.add(order.order_id)
        return Admission(order.order_id, status, self._queue.qsize())

    def order_status(self, order_id: int) -> OrderStatus:
        """Lifecycle view of one order (``state="unknown"`` if never seen)."""
        outcome = self._engine.outcome_for(order_id)
        if outcome is not None:
            self._admitted_ids.discard(order_id)
            return OrderStatus.from_outcome(outcome)
        if order_id in self._admitted_ids:
            return OrderStatus(order_id=order_id, state="submitted")
        return OrderStatus(order_id=order_id, state="unknown")

    def stats(self) -> dict:
        """Point-in-time service digest (window-boundary consistent)."""
        engine = self._engine
        decide = self._registry.histogram("service.decide_seconds").summary()
        stats = {
            "scenario": engine.scenario.name,
            "policy": engine.policy.name,
            "clock": type(self._clock).__name__,
            "now": self._clock.now(),
            "next_window_start": engine.next_window_start,
            "windows": len(engine.window_records),
            "horizon_complete": engine.horizon_complete,
            "finalized": engine.finalized,
            "orders_seen": len(engine._outcomes),
            "pool_size": engine.pool_size,
            "pending_ingest": engine.pending_external_count,
            "queue_depth": self._queue.qsize(),
            "late_rejections": self._late_rejections,
            "decide_seconds": decide,
            "backpressure": self._backpressure.snapshot(),
        }
        if engine.resilience is not None:
            stats["resilience"] = engine.resilience.snapshot()
        return stats

    def checkpoint(self, path: str | pathlib.Path | None = None) -> dict:
        """Freeze the service's world at the current window boundary.

        Queued-but-not-yet-pumped orders are drained into the engine's
        arrival heap first, so the snapshot loses nothing in flight.
        Optionally written to ``path`` as JSON.
        """
        self._drain_queue()
        snapshot = snapshot_simulator(self._engine, self._policy_name,
                                      self._policy_options)
        if path is not None:
            save_checkpoint(snapshot, path)
        return snapshot

    def request_stop(self) -> None:
        """Ask the run loop to wind down at the next wait point."""
        self._clock.stop()

    def set_clock(self, clock: ClockDriver) -> None:
        """Swap the clock driver (only while the loop is not running)."""
        if self._running:
            raise ServiceError("cannot swap the clock of a running service")
        self._clock = clock

    # ------------------------------------------------------------------ #
    # the resident loop
    # ------------------------------------------------------------------ #
    async def run(self, max_windows: int | None = None,
                  ) -> SimulationResult | None:
        """Serve windows until the horizon completes or the clock stops.

        Returns the final :class:`SimulationResult` when the horizon ran to
        completion, ``None`` when stopped early — by the clock driver or by
        ``max_windows`` (total windows stepped, across resumes), after
        which the caller may :meth:`checkpoint` and resume later.  Only one
        ``run`` may be active at a time.
        """
        if self._running:
            raise ServiceError("DispatchService.run() is already running")
        if self._engine.finalized:
            raise ServiceError("the service's horizon already finalized")
        self._running = True
        engine = self._engine
        cfg = engine.config
        pump = asyncio.create_task(self._pump())
        try:
            while not engine.horizon_complete:
                if (max_windows is not None
                        and len(engine.window_records) >= max_windows):
                    return None
                window_start = engine.next_window_start
                window_end = min(window_start + cfg.delta, cfg.end)
                proceed = await self._clock.wait_for_window(window_end)
                if not proceed:
                    return None
                # Anything still queued was admitted before the watermark /
                # deadline passed; fold it in before the window decides.
                self._drain_queue()
                record = engine.step_window(window_start, window_end)
                self._backpressure.record_decision(record.decision_seconds)
                self._registry.counter("service.windows").inc()
                self._registry.histogram("service.decide_seconds").record(
                    record.decision_seconds)
                self._registry.gauge("service.pool_size").set(engine.pool_size)
            self._drain_queue()
            self._result = engine.finalize()
            return self._result
        finally:
            self._running = False
            pump.cancel()
            try:
                await pump
            except asyncio.CancelledError:
                pass

    async def _pump(self) -> None:
        """Move admitted orders from the queue into the engine, forever."""
        while True:
            order = await self._queue.get()
            self._submit_to_engine(order)

    def _drain_queue(self) -> None:
        while not self._queue.empty():
            self._submit_to_engine(self._queue.get_nowait())

    def _submit_to_engine(self, order: Order) -> None:
        try:
            self._engine.submit([order])
        except ValueError:
            # Late arrival (wall-clock mode): ingestion already passed the
            # order's placement time, so deterministic replay cannot admit
            # it.  Counted, never silent.
            self._late_rejections += 1
            self._registry.counter("service.late_rejections").inc()


# --------------------------------------------------------------------------- #
# recorded-stream replay helpers
# --------------------------------------------------------------------------- #
def recorded_stream(scenario: Scenario, config: SimulationConfig) -> list[Order]:
    """The scenario's order stream exactly as batch mode would iterate it."""
    return sorted((o for o in scenario.orders
                   if config.start <= o.placed_at < config.end),
                  key=lambda o: (o.placed_at, o.order_id))


def remaining_orders(service: DispatchService,
                     orders: Sequence[Order]) -> list[Order]:
    """The tail of ``orders`` a restored service has not yet seen.

    Filters out orders already ingested (placed before the restored
    ingestion boundary) and orders still pending in the restored arrival
    heap — resubmitting either would dupe or violate the late-arrival rule.
    """
    engine = service.engine
    pending = {order_id for _, order_id, _ in engine._external}
    boundary = engine._ingested_until
    return [o for o in orders
            if o.placed_at >= boundary and o.order_id not in pending]


async def replay_orders(service: DispatchService,
                        orders: Sequence[Order]) -> int:
    """Feed a recorded stream under the watermark contract; returns #admitted.

    For every remaining window boundary, submits (and awaits admission of)
    all orders placed strictly before it, then advances the watermark —
    which is exactly the promise :class:`SimulatedClock` gates windows on.
    """
    clock = service.clock
    if not isinstance(clock, SimulatedClock):
        raise ServiceError("replay_orders requires a SimulatedClock service")
    cfg = service.engine.config
    window_start = service.engine.next_window_start
    index = 0
    admitted = 0
    while window_start < cfg.end and not clock.stopped:
        window_end = min(window_start + cfg.delta, cfg.end)
        while index < len(orders) and orders[index].placed_at < window_end:
            receipt = await service.submit_order(orders[index])
            if receipt.admitted:
                admitted += 1
            index += 1
        clock.advance_watermark(window_end)
        window_start = window_end
    return admitted


async def replay_orders_wall(service: DispatchService,
                             orders: Sequence[Order]) -> int:
    """Feed a recorded stream paced against a :class:`WallClock`.

    Sleeps until each order's placement time comes due on the service's
    clock, then submits it.  Returns the number admitted (stops early when
    the clock is stopped).
    """
    clock = service.clock
    admitted = 0
    for order in orders:
        while not clock.stopped:
            lag = order.placed_at - clock.now()
            if lag <= 0:
                break
            rate = getattr(clock, "rate", 1.0)
            await asyncio.sleep(min(lag / rate, 0.2))
        if clock.stopped:
            break
        receipt = await service.submit_order(order)
        if receipt.admitted:
            admitted += 1
    return admitted


async def serve_recorded(service: DispatchService,
                         max_windows: int | None = None,
                         ) -> SimulationResult | None:
    """Run a simulated-clock service over its scenario's recorded stream.

    The deterministic-replay entry point: the returned result is
    ``result_fingerprint``-identical to ``Simulator.run()`` on the same
    scenario/policy/config.  Works on fresh *and* checkpoint-restored
    services (the already-seen prefix is filtered out).  With
    ``max_windows`` the run pauses (returns ``None``) once that many total
    windows have been stepped — checkpoint-and-resume territory.
    """
    stream = remaining_orders(
        service, recorded_stream(service.engine.scenario,
                                 service.engine.config))
    feeder = asyncio.create_task(replay_orders(service, stream))
    try:
        return await service.run(max_windows=max_windows)
    finally:
        feeder.cancel()
        try:
            await feeder
        except asyncio.CancelledError:
            pass


__all__ = ["DispatchService", "recorded_stream", "remaining_orders",
           "replay_orders", "replay_orders_wall", "serve_recorded"]
