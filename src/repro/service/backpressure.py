"""Admission control for the dispatch service's ingest path.

Two signals gate admission:

* **queue depth** — the bounded ingest queue's occupancy against a
  high-water mark, and
* **decision latency** — the exact p99 of ``engine.decide`` over a rolling
  window of recent decision epochs against a configurable budget (the
  paper's real-time criterion: a window whose assignment computation
  exceeds Δ has *overflown*).

What happens when a signal trips depends on the policy:

``"defer"`` (default)
    Admission is *deferred*, never refused: the submit call parks on the
    bounded queue until capacity frees, which slows the producer to the
    service's pace.  Lossless — the deterministic-replay contract holds,
    because every order still reaches the engine before its window fires.

``"shed"``
    Over the high-water mark (or over the latency budget) orders are
    rejected outright.  Lossy by design: a shed order never existed as far
    as the engine is concerned.  Replay under shedding is *not*
    fingerprint-comparable to batch mode, which is why the golden tests
    and the benchmark's identity gate run with shedding off.

Either way every decision is counted — ``submitted`` / ``admitted`` /
``deferred`` / ``shed`` ride in :meth:`DispatchService.stats
<repro.service.loop.DispatchService.stats>` — so falling behind is visible
rather than silent.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

#: The recognised admission policies.
BACKPRESSURE_POLICIES = ("defer", "shed")


@dataclass(frozen=True)
class BackpressureConfig:
    """Knobs of the admission controller.

    Attributes
    ----------
    queue_capacity:
        Hard bound of the asyncio ingest queue.  A full queue always blocks
        (defer) or rejects (shed); the high-water mark trips earlier.
    high_water:
        Queue depth at which admission starts deferring/shedding; ``None``
        defaults to 80% of capacity.
    decide_p99_budget:
        Budget in seconds for the rolling p99 of per-window decision
        latency; ``None`` disables the latency gate.
    latency_window:
        Number of recent windows the rolling p99 is computed over.
    policy:
        ``"defer"`` (lossless, default) or ``"shed"`` (lossy).
    """

    queue_capacity: int = 1024
    high_water: int | None = None
    decide_p99_budget: float | None = None
    latency_window: int = 64
    policy: str = "defer"

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.high_water is not None and not (
                0 < self.high_water <= self.queue_capacity):
            raise ValueError(
                f"high_water must be in (0, queue_capacity={self.queue_capacity}]")
        if self.decide_p99_budget is not None and self.decide_p99_budget <= 0:
            raise ValueError("decide_p99_budget must be positive")
        if self.latency_window < 1:
            raise ValueError("latency_window must be at least 1")
        if self.policy not in BACKPRESSURE_POLICIES:
            raise ValueError(f"unknown backpressure policy {self.policy!r}; "
                             f"known: {BACKPRESSURE_POLICIES}")

    def resolved_high_water(self) -> int:
        if self.high_water is not None:
            return self.high_water
        return max(1, (self.queue_capacity * 4) // 5)


class BackpressureController:
    """Counts admissions and evaluates the two backpressure signals."""

    def __init__(self, config: BackpressureConfig | None = None) -> None:
        self.config = config or BackpressureConfig()
        self.submitted = 0
        self.admitted = 0
        self.deferred = 0
        self.shed = 0
        self._recent: deque[float] = deque(maxlen=self.config.latency_window)
        self._degradation_probe = None
        self.degradation_holds = 0

    def attach_degradation_probe(self, probe) -> None:
        """Register a zero-arg callable reporting remaining ladder headroom.

        The composition rule with the resilience layer is *degrade, then
        defer, then shed*: while the degradation controller still has a
        cheaper rung to fall to, the latency signal must not trip admission
        control — quality is given up before latency, and latency before
        work.  Queue-depth pressure is unaffected; a full queue is a memory
        bound, not a latency symptom.
        """
        self._degradation_probe = probe

    # ------------------------------------------------------------------ #
    # latency signal
    # ------------------------------------------------------------------ #
    def record_decision(self, seconds: float) -> None:
        """Feed one window's measured ``engine.decide`` latency."""
        self._recent.append(seconds)

    def decide_p99(self) -> float | None:
        """Exact p99 over the rolling window (``None`` before any window).

        Inverted-CDF semantics over the exact samples — the controller
        keeps at most ``latency_window`` floats, so no histogram
        approximation is needed where the admission decision is made.
        """
        if not self._recent:
            return None
        ordered = sorted(self._recent)
        rank = max(1, math.ceil(0.99 * len(ordered)))
        return ordered[rank - 1]

    def over_budget(self) -> bool:
        budget = self.config.decide_p99_budget
        if budget is None:
            return False
        p99 = self.decide_p99()
        if p99 is None or p99 <= budget:
            return False
        if self._degradation_probe is not None and self._degradation_probe():
            # Degrade-then-defer-then-shed: the ladder still has headroom,
            # so let the degradation controller buy the latency back before
            # admission control starts deferring or shedding.
            self.degradation_holds += 1
            return False
        return True

    # ------------------------------------------------------------------ #
    # admission decision
    # ------------------------------------------------------------------ #
    def pressured(self, queue_depth: int) -> bool:
        """Whether either signal (depth or latency) is tripped."""
        return queue_depth >= self.config.resolved_high_water() or self.over_budget()

    def should_shed(self, queue_depth: int) -> bool:
        return self.config.policy == "shed" and self.pressured(queue_depth)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, float | int | None]:
        """Picklable counter/signal digest for ``stats()``."""
        return {
            "policy": self.config.policy,
            "queue_capacity": self.config.queue_capacity,
            "high_water": self.config.resolved_high_water(),
            "decide_p99_budget": self.config.decide_p99_budget,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "deferred": self.deferred,
            "shed": self.shed,
            "degradation_holds": self.degradation_holds,
            "rolling_decide_p99": self.decide_p99(),
        }


__all__ = ["BACKPRESSURE_POLICIES", "BackpressureConfig",
           "BackpressureController"]
