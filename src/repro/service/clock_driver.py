"""Clock drivers: when does the next decision epoch fire?

The dispatch service separates *what* a window does (the engine's
:meth:`~repro.sim.engine.Simulator.step_window`, shared with batch mode)
from *when* it runs.  A :class:`ClockDriver` answers the second question:

:class:`SimulatedClock`
    Deterministic replay.  A window may fire only once the client's
    **watermark** has passed its end — the client promises that every order
    placed strictly before ``t`` has been submitted before it advances the
    watermark to ``t`` (the stream-processing watermark contract).  Under
    this contract the service ingests exactly the orders the batch engine's
    scenario stream would, so the run is ``result_fingerprint``-identical
    to ``Simulator.run()`` on the same scenario.  No wall-clock waiting is
    involved: replay runs as fast as the machine can step windows.

:class:`WallClock`
    Real-time pacing.  Window ``[s, e)`` fires when the wall clock reaches
    ``origin + (e - sim_start) / rate``; ``rate`` is the time-compression
    multiplier (``rate=60`` replays an hour of simulated time in a minute).

Both drivers support :meth:`~ClockDriver.stop`: pending and future waits
return ``False`` immediately, which is how the service shuts down cleanly
mid-horizon (SIGINT, checkpoint-and-exit).
"""

from __future__ import annotations

import asyncio
import math


class ClockDriver:
    """Base class: decide when each decision epoch may fire."""

    def __init__(self) -> None:
        self._stopped = False

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        """Wake every waiter; all pending/future waits return ``False``."""
        self._stopped = True

    async def wait_for_window(self, window_end: float) -> bool:
        """Block until the window ending at ``window_end`` may fire.

        Returns ``True`` when the window should run, ``False`` when the
        driver was stopped and the service should wind down instead.
        """
        raise NotImplementedError

    def now(self) -> float:
        """Best-known current simulated time (for stats reporting only)."""
        raise NotImplementedError


class SimulatedClock(ClockDriver):
    """Watermark-gated deterministic replay clock.

    The client drives time: :meth:`advance_watermark` declares that every
    order placed strictly before the new watermark has already been
    submitted.  ``wait_for_window(e)`` returns as soon as the watermark
    reaches ``e`` — the service then knows its ingest view of ``[.., e)``
    is complete and the window's decision is reproducible.
    """

    def __init__(self, start: float = -math.inf) -> None:
        super().__init__()
        self._watermark = start
        self._wakeup: asyncio.Event | None = None

    @property
    def watermark(self) -> float:
        return self._watermark

    def _event(self) -> asyncio.Event:
        # Created lazily so the clock can be constructed outside a loop.
        if self._wakeup is None:
            self._wakeup = asyncio.Event()
        return self._wakeup

    def advance_watermark(self, t: float) -> None:
        """Promise that all orders placed before ``t`` are submitted."""
        if t < self._watermark:
            raise ValueError(
                f"watermark may not regress: {t} < {self._watermark}")
        self._watermark = t
        event = self._wakeup
        if event is not None:
            event.set()

    def stop(self) -> None:
        super().stop()
        event = self._wakeup
        if event is not None:
            event.set()

    async def wait_for_window(self, window_end: float) -> bool:
        while not self._stopped and self._watermark < window_end:
            event = self._event()
            event.clear()
            # Re-check after clearing: single-threaded asyncio means no
            # advance can sneak in between the check and the wait.
            if self._stopped or self._watermark >= window_end:
                break
            await event.wait()
        return not self._stopped and self._watermark >= window_end

    def now(self) -> float:
        return self._watermark


class WallClock(ClockDriver):
    """Real-time pacing: one simulated second per ``1 / rate`` wall seconds."""

    def __init__(self, sim_start: float, rate: float = 1.0) -> None:
        super().__init__()
        if not (rate > 0 and math.isfinite(rate)):
            raise ValueError(f"rate must be a positive finite number, got {rate}")
        self.sim_start = sim_start
        self.rate = rate
        self._origin: float | None = None
        self._stop_event: asyncio.Event | None = None

    def _ensure_started(self) -> None:
        if self._origin is None:
            self._origin = asyncio.get_running_loop().time()
            self._stop_event = asyncio.Event()

    def stop(self) -> None:
        super().stop()
        if self._stop_event is not None:
            self._stop_event.set()

    async def wait_for_window(self, window_end: float) -> bool:
        self._ensure_started()
        assert self._origin is not None and self._stop_event is not None
        loop = asyncio.get_running_loop()
        deadline = self._origin + (window_end - self.sim_start) / self.rate
        while not self._stopped:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return True
            try:
                await asyncio.wait_for(self._stop_event.wait(),
                                       timeout=remaining)
            except asyncio.TimeoutError:
                return not self._stopped
        return False

    def now(self) -> float:
        if self._origin is None:
            return self.sim_start
        elapsed = asyncio.get_event_loop().time() - self._origin
        return self.sim_start + elapsed * self.rate


__all__ = ["ClockDriver", "SimulatedClock", "WallClock"]
