"""Checkpoint/restore of a mid-horizon simulation (scenario JSON v4 based.)

A checkpoint freezes a :class:`~repro.sim.engine.Simulator` at an
accumulation-window boundary: the embedded scenario document (format v4),
the policy by name, the engine's dynamic state (order pool, outcomes,
vehicle positions/routes/clocks, window log, order-stream cursor) and the
fleet controller's RNG streams.  :func:`restore_simulator` rebuilds a
simulator that continues from the boundary **bit-identically**: running the
restored engine to the horizon produces the same ``result_fingerprint`` as
the uninterrupted run (golden-tested, including under traffic and fleet
dynamics).

Three restore subtleties are worth naming, because they shape the format:

* **Traffic state is replayed, not copied.**  Hub-label repair is
  path-dependent — repaired labels differ from a fresh build in the last
  ULP — so the checkpoint records the exact sequence of controller-advance
  epochs and restore replays them against a pristine oracle, reproducing
  the same mutation history instead of trying to serialise label arrays.
* **Fleet state is copied, not replayed.**  Drain activation samples an
  RNG against *historical* vehicle positions that no longer exist at
  restore time, so the controller's RNG states, drain intervals and
  activation set are serialised directly.
* **The SDT memo travels with the outcomes.**  ``CostModel.sdt`` memoises
  per order at ingest time and is never invalidated by traffic updates; a
  cold cache would recompute under the *current* traffic state.  Restore
  re-seeds the memo from each outcome's recorded ``sdt``.

Malformed snapshots are rejected with a :class:`CheckpointError` naming
the offending field (``checkpoint field 'engine.next_window_start' must be
finite``), mirroring the scenario loader's validation style.
"""

from __future__ import annotations

import heapq
import json
import math
import pathlib
from collections.abc import Mapping, Sequence

from repro.experiments.runner import build_policy
from repro.network.distance_oracle import DistanceOracle
from repro.orders.costs import CostModel
from repro.orders.order import Order
from repro.orders.route_plan import PlanEvaluation, RoutePlan, RouteStop
from repro.orders.vehicle import Vehicle, VehicleState
from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.metrics import OrderOutcome, WindowRecord
from repro.workload.io import scenario_from_dict, scenario_to_dict

PathLike = str | pathlib.Path

CHECKPOINT_FORMAT = "repro.service-checkpoint"
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint document is malformed; the message names the field."""


# --------------------------------------------------------------------------- #
# validation helpers
# --------------------------------------------------------------------------- #
def _get(mapping: object, key: str, context: str) -> object:
    """Fetch a required field, naming its dotted path when absent."""
    path = f"{context}.{key}" if context else key
    if not isinstance(mapping, Mapping):
        raise CheckpointError(
            f"checkpoint field '{context or key}' must be an object")
    if key not in mapping:
        raise CheckpointError(f"checkpoint missing required field '{path}'")
    return mapping[key]

def _finite(value: object, context: str) -> float:
    """Validate a required finite number, naming the offender.

    Type-preserving on purpose: the engine mixes ints and floats (an
    integer ``config.start``, float window ends), JSON keeps the
    distinction, and ``result_fingerprint`` hashes ``repr`` values —
    coercing ``43200`` to ``43200.0`` would change the fingerprint without
    changing any behaviour.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CheckpointError(
            f"checkpoint field '{context}' must be a number "
            f"(got {value!r})")
    if not math.isfinite(value):
        raise CheckpointError(
            f"checkpoint field '{context}' must be finite (got {value})")
    return value


def _optional(value: object, context: str) -> float | None:
    return None if value is None else _finite(value, context)


# --------------------------------------------------------------------------- #
# order / route serialisation
# --------------------------------------------------------------------------- #
def _order_to_dict(order: Order) -> dict:
    return {
        "order_id": order.order_id,
        "restaurant_node": order.restaurant_node,
        "customer_node": order.customer_node,
        "placed_at": order.placed_at,
        "items": order.items,
        "prep_time": order.prep_time,
        "restaurant_id": order.restaurant_id,
    }


def _order_from_dict(payload: object, context: str) -> Order:
    return Order(
        order_id=int(_get(payload, "order_id", context)),  # type: ignore[arg-type]
        restaurant_node=int(_get(payload, "restaurant_node", context)),  # type: ignore[arg-type]
        customer_node=int(_get(payload, "customer_node", context)),  # type: ignore[arg-type]
        placed_at=_finite(_get(payload, "placed_at", context),
                          f"{context}.placed_at"),
        items=int(_get(payload, "items", context)),  # type: ignore[arg-type]
        prep_time=_finite(_get(payload, "prep_time", context),
                          f"{context}.prep_time"),
        restaurant_id=(None if payload["restaurant_id"] is None  # type: ignore[index]
                       else int(payload["restaurant_id"])),  # type: ignore[index]
    )


def _stops_to_list(stops: Sequence[RouteStop]) -> list[list]:
    return [[stop.order.order_id, stop.node, stop.is_pickup] for stop in stops]


def _stops_from_list(payload: object, orders: Mapping[int, Order],
                     context: str) -> list[RouteStop]:
    stops: list[RouteStop] = []
    for idx, row in enumerate(payload):  # type: ignore[union-attr]
        order_id, node, is_pickup = row
        order = orders.get(int(order_id))
        if order is None:
            raise CheckpointError(
                f"checkpoint field '{context}[{idx}]' references unknown "
                f"order {order_id}")
        stops.append(RouteStop(int(node), order, bool(is_pickup)))
    return stops


def _route_to_dict(route: RoutePlan | None) -> dict | None:
    if route is None:
        return None
    ev = route.evaluation
    return {
        "stops": _stops_to_list(route.stops),
        "start_node": route.start_node,
        "start_time": route.start_time,
        "evaluation": {
            "total_xdt": ev.total_xdt,
            "delivery_times": sorted(ev.delivery_times.items()),
            "pickup_times": sorted(ev.pickup_times.items()),
            "waiting_time": ev.waiting_time,
            "travel_time": ev.travel_time,
            "finish_time": ev.finish_time,
        },
    }


def _route_from_dict(payload: object, orders: Mapping[int, Order],
                     context: str) -> RoutePlan | None:
    if payload is None:
        return None
    ev = _get(payload, "evaluation", context)
    evaluation = PlanEvaluation(
        # Values pass through untouched (no float() coercion, no finiteness
        # check): committed plan evaluations are finite floats already, and
        # preserving the exact JSON value keeps restored state bit-equal.
        total_xdt=_get(ev, "total_xdt", f"{context}.evaluation"),  # type: ignore[arg-type]
        delivery_times={int(k): v
                        for k, v in _get(ev, "delivery_times",
                                         f"{context}.evaluation")},  # type: ignore[union-attr]
        pickup_times={int(k): v
                      for k, v in _get(ev, "pickup_times",
                                       f"{context}.evaluation")},  # type: ignore[union-attr]
        waiting_time=_get(ev, "waiting_time", f"{context}.evaluation"),  # type: ignore[arg-type]
        travel_time=_get(ev, "travel_time", f"{context}.evaluation"),  # type: ignore[arg-type]
        finish_time=_get(ev, "finish_time", f"{context}.evaluation"),  # type: ignore[arg-type]
    )
    return RoutePlan(
        stops=tuple(_stops_from_list(_get(payload, "stops", context), orders,
                                     f"{context}.stops")),
        start_node=int(_get(payload, "start_node", context)),  # type: ignore[arg-type]
        start_time=_finite(_get(payload, "start_time", context),
                           f"{context}.start_time"),
        evaluation=evaluation,
    )


def _rng_state_to_list(state: tuple) -> list:
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def _rng_state_from_list(payload: object, context: str) -> tuple:
    try:
        version, internal, gauss_next = payload  # type: ignore[misc]
        return (int(version), tuple(int(x) for x in internal), gauss_next)
    except (TypeError, ValueError):
        raise CheckpointError(
            f"checkpoint field '{context}' is not a serialised RNG state") \
            from None


# --------------------------------------------------------------------------- #
# snapshot
# --------------------------------------------------------------------------- #
def snapshot_simulator(sim: Simulator, policy_name: str,
                       policy_options: Sequence[tuple[str, object]] = (),
                       ) -> dict:
    """Freeze a simulator at its current window boundary into a JSON dict.

    Must be taken *between* windows (the dispatch service only checkpoints
    there; batch callers checkpoint between :meth:`Simulator.step_window`
    calls).  ``policy_name``/``policy_options`` record how to rebuild the
    policy — policies themselves are stateless across windows, so the name
    is enough.
    """
    if sim.finalized:
        raise CheckpointError("cannot checkpoint a finalized Simulator")
    cfg = sim.config
    fleet_state = None
    if sim.fleet is not None:
        controller = sim.fleet
        timeline = list(controller.plan.timeline)
        repositioner_rng = getattr(controller._repositioner, "_rng", None)
        fleet_state = {
            "rng": _rng_state_to_list(controller._rng.getstate()),
            "offer_rng": _rng_state_to_list(controller._offer_rng.getstate()),
            "repositioner_rng": (None if repositioner_rng is None else
                                 _rng_state_to_list(repositioner_rng.getstate())),
            "drain_intervals": [[vid, [list(iv) for iv in intervals]]
                                for vid, intervals
                                in sorted(controller._drain_intervals.items())],
            "activated": sorted(timeline.index(event)
                                for event in controller._activated),
            "prev_on_duty": (None if controller._prev_on_duty is None
                             else sorted(controller._prev_on_duty)),
            "time": controller._time,
            "log": {name: getattr(controller.log, name)
                    for name in ("advances", "logins", "logouts",
                                 "surge_activations", "drained_vehicles",
                                 "offers", "declines", "handoff_orders",
                                 "repositions")},
        }
    vehicles = []
    for vehicle in sim.vehicles:
        vehicles.append({
            "vehicle_id": vehicle.vehicle_id,
            "node": vehicle.node,
            "state": vehicle.state.value,
            "reposition_node": vehicle.reposition_node,
            "distance_travelled_km": vehicle.distance_travelled_km,
            "waiting_seconds": vehicle.waiting_seconds,
            "km_by_load": [[load, km]
                           for load, km in sorted(vehicle.km_by_load.items())],
            # Dict order is preserved: `unassign_pending` iterates it, so
            # the restored dict must iterate identically.
            "assigned": list(vehicle.assigned),
            "picked_up": sorted(vehicle.picked_up),
            "route": _route_to_dict(vehicle.route),
            "stop_queue": _stops_to_list(vehicle.stop_queue),
        })
    outcomes = []
    for outcome in sim._outcomes.values():
        outcomes.append({
            "order": _order_to_dict(outcome.order),
            "sdt": outcome.sdt,
            "assigned_at": outcome.assigned_at,
            "picked_up_at": outcome.picked_up_at,
            "delivered_at": outcome.delivered_at,
            "rejected": outcome.rejected,
            "vehicle_id": outcome.vehicle_id,
            "reassignments": outcome.reassignments,
            "wait_seconds": outcome.wait_seconds,
            "offer_rejections": outcome.offer_rejections,
            "handoffs": outcome.handoffs,
            "ever_assigned": outcome.ever_assigned,
        })
    return {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "scenario": scenario_to_dict(sim.scenario),
        "policy": {"name": policy_name,
                   "options": [[key, value] for key, value in policy_options]},
        "config": {
            "delta": cfg.delta,
            "start": cfg.start,
            "end": cfg.end,
            "rejection_timeout": cfg.rejection_timeout,
            "omega": cfg.omega,
            "drain_seconds": cfg.drain_seconds,
            "charge_decision_time": cfg.charge_decision_time,
            "vectorized": cfg.vectorized,
            "event_resolution": cfg.event_resolution,
        },
        "engine": {
            "order_source": sim.order_source,
            "started": sim.started,
            "next_window_start": sim.next_window_start,
            "ingested_until": sim._ingested_until,
            "consumed_orders": sim._consumed_orders,
            "traffic_epochs": list(sim._traffic_epochs),
            "external_orders": [_order_to_dict(order)
                                for _, _, order in sorted(sim._external)],
            "pool": list(sim._pool),
            "outcomes": outcomes,
            "vehicle_clock": [[vid, t]
                              for vid, t in sim._vehicle_clock.items()],
            "windows": [{
                "start": w.start, "end": w.end,
                "num_orders": w.num_orders,
                "num_vehicles": w.num_vehicles,
                "num_assigned_orders": w.num_assigned_orders,
                "decision_seconds": w.decision_seconds,
                "num_declined_offers": w.num_declined_offers,
                "num_handoffs": w.num_handoffs,
            } for w in sim._windows],
            "vehicles": vehicles,
            "fleet": fleet_state,
        },
    }


# --------------------------------------------------------------------------- #
# restore
# --------------------------------------------------------------------------- #
def policy_spec_from_checkpoint(payload: Mapping) -> tuple[str, dict]:
    """The (policy name, options dict) recorded in a checkpoint."""
    policy = _get(payload, "policy", "")
    name = str(_get(policy, "name", "policy"))
    options = {str(key): value
               for key, value in _get(policy, "options", "policy")}  # type: ignore[union-attr]
    return name, options


def restore_simulator(payload: Mapping, oracle: DistanceOracle | None = None,
                      tracer=None) -> Simulator:
    """Rebuild a mid-horizon simulator from :func:`snapshot_simulator` output.

    ``oracle`` may supply a pre-built (pristine or resettable) oracle for
    the checkpoint's network — it is reset to its pre-traffic state before
    the recorded epoch sequence is replayed.  By default a fresh oracle is
    built from the embedded scenario.  The returned simulator continues
    from its next window boundary via :meth:`Simulator.step_window` /
    :meth:`Simulator.resume`.
    """
    if _get(payload, "format", "") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint field 'format' must be {CHECKPOINT_FORMAT!r} "
            f"(got {payload.get('format')!r})")
    if _get(payload, "version", "") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {payload.get('version')!r} "
            f"(supported: {CHECKPOINT_VERSION})")
    scenario = scenario_from_dict(dict(_get(payload, "scenario", "")))  # type: ignore[arg-type]
    config_payload = _get(payload, "config", "")
    config = SimulationConfig(
        delta=_finite(_get(config_payload, "delta", "config"), "config.delta"),
        start=_finite(_get(config_payload, "start", "config"), "config.start"),
        end=_finite(_get(config_payload, "end", "config"), "config.end"),
        rejection_timeout=_finite(
            _get(config_payload, "rejection_timeout", "config"),
            "config.rejection_timeout"),
        omega=_finite(_get(config_payload, "omega", "config"), "config.omega"),
        drain_seconds=_finite(_get(config_payload, "drain_seconds", "config"),
                              "config.drain_seconds"),
        charge_decision_time=bool(
            _get(config_payload, "charge_decision_time", "config")),
        vectorized=bool(_get(config_payload, "vectorized", "config")),
        event_resolution=str(
            _get(config_payload, "event_resolution", "config")),
    )
    engine = _get(payload, "engine", "")
    order_source = str(_get(engine, "order_source", "engine"))
    next_window_start = _finite(
        _get(engine, "next_window_start", "engine"),
        "engine.next_window_start")
    if oracle is None:
        oracle = DistanceOracle(scenario.network)
    elif scenario.traffic:
        # A reused oracle may carry residual overrides from an earlier run;
        # the epoch replay below assumes the pristine pre-traffic state.
        oracle.reset_traffic_state()
    cost_model = CostModel(oracle)
    policy_name, policy_options = policy_spec_from_checkpoint(payload)
    policy = build_policy(policy_name, cost_model, **policy_options)
    sim = Simulator(scenario, policy, cost_model, config, tracer=tracer,
                    order_source=order_source)

    # -- traffic: replay the exact controller-advance epoch sequence ----- #
    traffic_epochs = [_finite(epoch, f"engine.traffic_epochs[{i}]")
                      for i, epoch in enumerate(_get(engine, "traffic_epochs",
                                                     "engine"))]  # type: ignore[arg-type]
    if traffic_epochs and sim.traffic is None:
        raise CheckpointError(
            "checkpoint field 'engine.traffic_epochs' is non-empty but the "
            "embedded scenario has no traffic timeline")
    if sim.traffic is not None:
        for epoch in traffic_epochs:
            sim.traffic.advance(epoch)
    sim._traffic_epochs = list(traffic_epochs)

    # -- order table: scenario stream + outcome orders + pending external  #
    orders: dict[int, Order] = {o.order_id: o for o in scenario.orders}
    outcome_rows = _get(engine, "outcomes", "engine")
    restored_outcomes: dict[int, OrderOutcome] = {}
    for idx, row in enumerate(outcome_rows):  # type: ignore[union-attr]
        context = f"engine.outcomes[{idx}]"
        order = _order_from_dict(_get(row, "order", context),
                                 f"{context}.order")
        orders[order.order_id] = order
        restored_outcomes[order.order_id] = OrderOutcome(
            order=order,
            sdt=_finite(_get(row, "sdt", context), f"{context}.sdt"),
            assigned_at=_optional(row.get("assigned_at"),
                                  f"{context}.assigned_at"),
            picked_up_at=_optional(row.get("picked_up_at"),
                                   f"{context}.picked_up_at"),
            delivered_at=_optional(row.get("delivered_at"),
                                   f"{context}.delivered_at"),
            rejected=bool(_get(row, "rejected", context)),
            vehicle_id=(None if row.get("vehicle_id") is None
                        else int(row["vehicle_id"])),
            reassignments=int(_get(row, "reassignments", context)),  # type: ignore[arg-type]
            wait_seconds=_finite(_get(row, "wait_seconds", context),
                                 f"{context}.wait_seconds"),
            offer_rejections=int(_get(row, "offer_rejections", context)),  # type: ignore[arg-type]
            handoffs=int(_get(row, "handoffs", context)),  # type: ignore[arg-type]
            ever_assigned=bool(_get(row, "ever_assigned", context)),
        )
    sim._outcomes = restored_outcomes
    # Re-seed the SDT memo: it was filled at ingest time and is never
    # invalidated by traffic updates, so a cold cache could recompute a
    # different value under the current traffic state.
    for order_id, outcome in restored_outcomes.items():
        cost_model._sdt_cache[order_id] = outcome.sdt

    external_rows = _get(engine, "external_orders", "engine")
    external: list[tuple[float, int, Order]] = []
    for idx, row in enumerate(external_rows):  # type: ignore[union-attr]
        order = _order_from_dict(row, f"engine.external_orders[{idx}]")
        orders[order.order_id] = order
        external.append((order.placed_at, order.order_id, order))
    heapq.heapify(external)
    sim._external = external

    pool_ids = _get(engine, "pool", "engine")
    pool: dict[int, Order] = {}
    for order_id in pool_ids:  # type: ignore[union-attr]
        outcome = restored_outcomes.get(int(order_id))
        if outcome is None:
            raise CheckpointError(
                f"checkpoint field 'engine.pool' references order {order_id} "
                "with no outcome record")
        pool[int(order_id)] = outcome.order
    sim._pool = pool

    # -- scenario-stream cursor ------------------------------------------ #
    consumed = int(_finite(_get(engine, "consumed_orders", "engine"),
                           "engine.consumed_orders"))
    for _ in range(consumed):
        if sim._next_order is None:
            raise CheckpointError(
                f"checkpoint field 'engine.consumed_orders' ({consumed}) "
                "exceeds the scenario's order stream length")
        sim._next_order = next(sim._order_iter, None)
    sim._consumed_orders = consumed

    # -- vehicles --------------------------------------------------------- #
    by_id = {vehicle.vehicle_id: vehicle for vehicle in sim.vehicles}
    vehicle_rows = _get(engine, "vehicles", "engine")
    for idx, row in enumerate(vehicle_rows):  # type: ignore[union-attr]
        context = f"engine.vehicles[{idx}]"
        vehicle_id = int(_get(row, "vehicle_id", context))  # type: ignore[arg-type]
        vehicle = by_id.get(vehicle_id)
        if vehicle is None:
            raise CheckpointError(
                f"checkpoint field '{context}.vehicle_id' references "
                f"unknown vehicle {vehicle_id}")
        vehicle.node = int(_get(row, "node", context))  # type: ignore[arg-type]
        try:
            vehicle.state = VehicleState(str(_get(row, "state", context)))
        except ValueError:
            raise CheckpointError(
                f"checkpoint field '{context}.state' is not a vehicle "
                f"state: {row.get('state')!r}") from None
        vehicle.reposition_node = (None if row.get("reposition_node") is None
                                   else int(row["reposition_node"]))
        vehicle.distance_travelled_km = _finite(
            _get(row, "distance_travelled_km", context),
            f"{context}.distance_travelled_km")
        vehicle.waiting_seconds = _finite(
            _get(row, "waiting_seconds", context),
            f"{context}.waiting_seconds")
        vehicle.km_by_load = {int(load): km
                              for load, km in _get(row, "km_by_load", context)}  # type: ignore[union-attr]
        assigned: dict[int, Order] = {}
        for order_id in _get(row, "assigned", context):  # type: ignore[union-attr]
            order = orders.get(int(order_id))
            if order is None:
                raise CheckpointError(
                    f"checkpoint field '{context}.assigned' references "
                    f"unknown order {order_id}")
            assigned[int(order_id)] = order
        vehicle.assigned = assigned
        vehicle.picked_up = set()
        for order_id in _get(row, "picked_up", context):  # type: ignore[union-attr]
            vehicle.picked_up.add(int(order_id))
        vehicle.route = _route_from_dict(row.get("route"), orders,
                                         f"{context}.route")
        vehicle.stop_queue = _stops_from_list(
            _get(row, "stop_queue", context), orders, f"{context}.stop_queue")

    clock_rows = _get(engine, "vehicle_clock", "engine")
    vehicle_clock: dict[int, float] = {}
    for vid, t in clock_rows:  # type: ignore[union-attr]
        if int(vid) not in by_id:
            raise CheckpointError(
                f"checkpoint field 'engine.vehicle_clock' references "
                f"unknown vehicle {vid}")
        vehicle_clock[int(vid)] = _finite(t, f"engine.vehicle_clock[{vid}]")
    missing_clock = set(by_id) - set(vehicle_clock)
    if missing_clock:
        raise CheckpointError(
            "checkpoint field 'engine.vehicle_clock' is missing vehicles "
            f"{sorted(missing_clock)}")
    sim._vehicle_clock = vehicle_clock

    sim._windows = [WindowRecord(
        start=_finite(_get(w, "start", f"engine.windows[{i}]"),
                      f"engine.windows[{i}].start"),
        end=_finite(_get(w, "end", f"engine.windows[{i}]"),
                    f"engine.windows[{i}].end"),
        num_orders=int(_get(w, "num_orders", f"engine.windows[{i}]")),  # type: ignore[arg-type]
        num_vehicles=int(_get(w, "num_vehicles", f"engine.windows[{i}]")),  # type: ignore[arg-type]
        num_assigned_orders=int(
            _get(w, "num_assigned_orders", f"engine.windows[{i}]")),  # type: ignore[arg-type]
        decision_seconds=_get(w, "decision_seconds", f"engine.windows[{i}]"),  # type: ignore[arg-type]
        num_declined_offers=int(
            _get(w, "num_declined_offers", f"engine.windows[{i}]")),  # type: ignore[arg-type]
        num_handoffs=int(_get(w, "num_handoffs", f"engine.windows[{i}]")),  # type: ignore[arg-type]
    ) for i, w in enumerate(_get(engine, "windows", "engine"))]  # type: ignore[union-attr]

    # -- fleet controller: direct state restore --------------------------- #
    fleet_state = engine.get("fleet") if isinstance(engine, Mapping) else None  # type: ignore[union-attr]
    if fleet_state is not None:
        if sim.fleet is None:
            raise CheckpointError(
                "checkpoint field 'engine.fleet' is present but the "
                "embedded scenario has no fleet plan")
        controller = sim.fleet
        controller._rng.setstate(_rng_state_from_list(
            _get(fleet_state, "rng", "engine.fleet"), "engine.fleet.rng"))
        controller._offer_rng.setstate(_rng_state_from_list(
            _get(fleet_state, "offer_rng", "engine.fleet"),
            "engine.fleet.offer_rng"))
        repositioner_state = fleet_state.get("repositioner_rng")
        repositioner_rng = getattr(controller._repositioner, "_rng", None)
        if repositioner_state is not None and repositioner_rng is not None:
            repositioner_rng.setstate(_rng_state_from_list(
                repositioner_state, "engine.fleet.repositioner_rng"))
        controller._drain_intervals = {
            int(vid): [(_finite(start, f"engine.fleet.drain_intervals[{vid}]"),
                        _finite(end, f"engine.fleet.drain_intervals[{vid}]"))
                       for start, end in intervals]
            for vid, intervals in _get(fleet_state, "drain_intervals",
                                       "engine.fleet")}  # type: ignore[union-attr]
        timeline = list(controller.plan.timeline)
        activated = set()
        for index in _get(fleet_state, "activated", "engine.fleet"):  # type: ignore[union-attr]
            if not 0 <= int(index) < len(timeline):
                raise CheckpointError(
                    f"checkpoint field 'engine.fleet.activated' index "
                    f"{index} is outside the fleet timeline "
                    f"(length {len(timeline)})")
            activated.add(timeline[int(index)])
        controller._activated = activated
        prev = fleet_state.get("prev_on_duty")
        controller._prev_on_duty = None if prev is None else {int(v) for v in prev}
        controller._time = _optional(fleet_state.get("time"),
                                     "engine.fleet.time")
        log_payload = _get(fleet_state, "log", "engine.fleet")
        for name in ("advances", "logins", "logouts", "surge_activations",
                     "drained_vehicles", "offers", "declines",
                     "handoff_orders", "repositions"):
            setattr(controller.log, name,
                    int(_get(log_payload, name, "engine.fleet.log")))  # type: ignore[arg-type]

    # -- cursor state ------------------------------------------------------ #
    sim._ingested_until = _finite(_get(engine, "ingested_until", "engine"),
                                  "engine.ingested_until")
    sim._next_window_start = next_window_start
    if bool(_get(engine, "started", "engine")):
        # Take the shared-counter baseline *now* (post-replay) so the
        # resumed run's cache/telemetry deltas cover only what it does.
        sim._begin()
    return sim


# --------------------------------------------------------------------------- #
# file I/O
# --------------------------------------------------------------------------- #
def save_checkpoint(snapshot: Mapping, path: PathLike) -> None:
    """Write a checkpoint document as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle)


def load_checkpoint(path: PathLike) -> dict:
    """Read a checkpoint document previously written with :func:`save_checkpoint`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"checkpoint file {path} must contain a JSON object "
            f"(got {type(payload).__name__})")
    return payload


__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "snapshot_simulator",
    "restore_simulator",
    "policy_spec_from_checkpoint",
    "save_checkpoint",
    "load_checkpoint",
]
