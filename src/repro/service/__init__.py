"""repro.service: the dispatch engine as an always-on asyncio service.

The batch :class:`~repro.sim.engine.Simulator` answers "what happened over
this recorded day"; this package answers "keep dispatching, orders are
still arriving".  It hosts the exact same window machinery in a long-lived
event loop behind an async API (:class:`DispatchService`), with:

* pluggable :mod:`clock drivers <repro.service.clock_driver>` — watermark
  -gated deterministic replay or wall-clock pacing,
* :mod:`checkpoint/restore <repro.service.checkpoint>` on top of the
  scenario JSON format — stop mid-horizon, resume bit-identically,
* :mod:`multi-city sharding <repro.service.shards>` — one resident worker
  process per city, merged fleet-wide telemetry, and
* explicit :mod:`backpressure <repro.service.backpressure>` — bounded
  ingest queue with defer/shed admission and visible counters.

The determinism contract: a simulated-clock service fed a scenario's
recorded order stream (:func:`serve_recorded`) produces a result
``result_fingerprint``-identical to ``Simulator.run()`` on the same
scenario — the service is the batch engine rehosted, not a fork of it.
"""

from repro.service.api import (
    ADMISSION_STATES,
    ORDER_STATES,
    Admission,
    OrderStatus,
    ServiceClosed,
    ServiceError,
)
from repro.service.backpressure import (
    BACKPRESSURE_POLICIES,
    BackpressureConfig,
    BackpressureController,
)
from repro.service.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointError,
    load_checkpoint,
    policy_spec_from_checkpoint,
    restore_simulator,
    save_checkpoint,
    snapshot_simulator,
)
from repro.service.clock_driver import ClockDriver, SimulatedClock, WallClock
from repro.service.loop import (
    DispatchService,
    recorded_stream,
    remaining_orders,
    replay_orders,
    replay_orders_wall,
    serve_recorded,
)
from repro.service.shards import (
    ShardPool,
    ShardReport,
    ShardTask,
    fleet_report,
    setting_config,
)

__all__ = [
    "ADMISSION_STATES",
    "BACKPRESSURE_POLICIES",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "ORDER_STATES",
    "Admission",
    "BackpressureConfig",
    "BackpressureController",
    "CheckpointError",
    "ClockDriver",
    "DispatchService",
    "OrderStatus",
    "ServiceClosed",
    "ServiceError",
    "ShardPool",
    "ShardReport",
    "ShardTask",
    "SimulatedClock",
    "WallClock",
    "fleet_report",
    "load_checkpoint",
    "policy_spec_from_checkpoint",
    "recorded_stream",
    "remaining_orders",
    "replay_orders",
    "replay_orders_wall",
    "restore_simulator",
    "save_checkpoint",
    "serve_recorded",
    "setting_config",
    "snapshot_simulator",
]
