"""Multi-city sharding: a resident dispatch worker pool, one shard per city.

Where :func:`repro.experiments.executor.run_cells` spins a pool up per grid
and tears it down after, the dispatch service keeps a **resident** pool:
one long-lived worker process per city shard, each holding its city's
materialised scenario/oracle warm across however many serve tasks it is
handed over its lifetime.  The pieces deliberately reuse the executor's
machinery — workers fork through the same :func:`pool_context`, resolve
city profiles by name against the same :data:`PROFILE_REGISTRY`, and reset
a traffic-mutated cached oracle before every task — so a shard's result is
the same pure function of ``(setting, policy)`` the batch executor
computes, fingerprints included.

Each worker runs its tasks through a simulated-clock
:class:`~repro.service.loop.DispatchService` over the scenario's recorded
order stream (:func:`~repro.service.loop.serve_recorded`), and reports the
``result_fingerprint``, the result summary, the service stats and a
worker-lifetime :class:`~repro.obs.metrics.MetricsRegistry` snapshot.
:func:`fleet_report` folds the per-shard snapshots into one fleet view via
:func:`~repro.obs.metrics.merge_snapshots`.
"""

from __future__ import annotations

import asyncio
import time
import traceback
from dataclasses import dataclass, fields
from collections.abc import Mapping, Sequence

from repro.experiments.executor import (
    PROFILE_REGISTRY,
    pool_context,
    register_profile,
    result_fingerprint,
)
from repro.experiments.runner import ExperimentSetting, materialize
from repro.network.graph import SECONDS_PER_HOUR
from repro.obs import get_mode, set_mode
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.sim.engine import SimulationConfig


@dataclass(frozen=True)
class ShardTask:
    """One serve request for a shard: replay its city under a policy.

    ``options`` uses the :class:`~repro.experiments.runner.PolicySpec`
    convention — a tuple of ``(key, value)`` pairs, hashable and picklable.
    """

    task_id: int
    policy: str = "foodmatch"
    options: tuple = ()


@dataclass(frozen=True)
class ShardReport:
    """What a shard worker sends back for one task (or its traceback)."""

    shard: str
    task_id: int
    ok: bool
    error: str | None = None
    fingerprint: str | None = None
    summary: dict | None = None
    stats: dict | None = None
    metrics: dict | None = None
    elapsed_seconds: float = 0.0


def setting_config(setting: ExperimentSetting) -> SimulationConfig:
    """The :class:`SimulationConfig` batch ``run_setting`` derives from a setting."""
    return SimulationConfig(
        delta=setting.resolved_delta(),
        start=setting.start_hour * SECONDS_PER_HOUR,
        end=setting.end_hour * SECONDS_PER_HOUR,
        event_resolution=setting.event_resolution,
    )


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #
def _serve_task(setting: ExperimentSetting, task: ShardTask,
                registry: MetricsRegistry, shard: str,
                started: float) -> ShardReport:
    # Imported here so fork'd workers pay the service import once, lazily,
    # and the module stays importable without asyncio running.
    from repro.service.loop import DispatchService, serve_recorded

    scenario, oracle = materialize(setting)
    if setting.repair_fraction is not None:
        oracle.repair_fraction = setting.repair_fraction
    else:
        oracle.__dict__.pop("repair_fraction", None)
    service = DispatchService(scenario, task.policy, dict(task.options),
                              config=setting_config(setting), oracle=oracle,
                              registry=registry)
    result = asyncio.run(serve_recorded(service))
    assert result is not None  # nothing stops a recorded replay
    return ShardReport(
        shard=shard,
        task_id=task.task_id,
        ok=True,
        fingerprint=result_fingerprint(result),
        summary=result.summary(),
        stats=service.stats(),
        metrics=registry.snapshot(),
        elapsed_seconds=time.perf_counter() - started,
    )


def _shard_worker(shard: str, profile_name: str,
                  setting_kwargs: dict[str, object], obs_mode: str,
                  task_queue, report_queue) -> None:
    """Resident worker loop: serve tasks until the ``None`` sentinel.

    The worker's scenario cache (via :func:`materialize`) and its metrics
    registry live for the whole process, so repeat tasks on the same shard
    reuse the city's heavy artifacts instead of rebuilding them.
    """
    set_mode(obs_mode)
    registry = MetricsRegistry()
    while True:
        task = task_queue.get()
        if task is None:
            break
        started = time.perf_counter()
        try:
            profile = PROFILE_REGISTRY.get(profile_name)
            if profile is None:
                raise KeyError(
                    f"city profile {profile_name!r} is not registered in "
                    f"this shard worker (known: {sorted(PROFILE_REGISTRY)})")
            setting = ExperimentSetting(profile=profile, **setting_kwargs)
            report = _serve_task(setting, task, registry, shard, started)
        except Exception:
            report = ShardReport(
                shard=shard, task_id=task.task_id, ok=False,
                error=traceback.format_exc(),
                elapsed_seconds=time.perf_counter() - started)
        report_queue.put(report)


# --------------------------------------------------------------------------- #
# driver side
# --------------------------------------------------------------------------- #
class ShardPool:
    """One resident dispatch worker per city shard.

    >>> with ShardPool({"cityA": setting_a, "cityB": setting_b}) as pool:
    ...     pool.submit("cityA", ShardTask(0))
    ...     pool.submit("cityB", ShardTask(1))
    ...     reports = pool.collect()
    ...     fleet = fleet_report(reports)

    Tasks on different shards run concurrently; tasks on the same shard
    queue FIFO on that shard's persistent task queue.  ``close()`` (or the
    context manager exit) sends each worker the shutdown sentinel and
    joins it.
    """

    def __init__(self, shards: Mapping[str, ExperimentSetting]) -> None:
        if not shards:
            raise ValueError("ShardPool needs at least one shard")
        self._shards = dict(shards)
        self._context = pool_context()
        self._report_queue = self._context.Queue()
        self._task_queues: dict[str, object] = {}
        self._processes: dict[str, object] = {}
        self._outstanding = 0
        self._started = False
        self._closed = False

    def __enter__(self) -> ShardPool:
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def shard_names(self) -> list[str]:
        return sorted(self._shards)

    def start(self) -> None:
        """Fork one resident worker per shard (idempotent)."""
        if self._started:
            return
        self._started = True
        for name in self.shard_names:
            setting = self._shards[name]
            # Fork'd children inherit the registration, like executor pools.
            register_profile(setting.profile)
            setting_kwargs = {
                f.name: getattr(setting, f.name)
                for f in fields(ExperimentSetting) if f.name != "profile"}
            task_queue = self._context.Queue()
            process = self._context.Process(
                target=_shard_worker,
                args=(name, setting.profile.name, setting_kwargs, get_mode(),
                      task_queue, self._report_queue),
                daemon=True)
            process.start()
            self._task_queues[name] = task_queue
            self._processes[name] = process

    def submit(self, shard: str, task: ShardTask) -> None:
        """Queue a task on a shard's persistent queue."""
        if self._closed:
            raise RuntimeError("ShardPool is closed")
        if shard not in self._shards:
            raise KeyError(f"unknown shard {shard!r}; "
                           f"known: {self.shard_names}")
        self.start()
        self._task_queues[shard].put(task)
        self._outstanding += 1

    def collect(self, count: int | None = None) -> list[ShardReport]:
        """Block until ``count`` (default: all outstanding) reports arrive."""
        if count is None:
            count = self._outstanding
        if count > self._outstanding:
            raise ValueError(
                f"cannot collect {count} reports with only "
                f"{self._outstanding} outstanding")
        reports = []
        for _ in range(count):
            reports.append(self._report_queue.get())
            self._outstanding -= 1
        return reports

    def close(self) -> None:
        """Send every worker the shutdown sentinel and join it."""
        if self._closed:
            return
        self._closed = True
        for name in self._task_queues:
            self._task_queues[name].put(None)
        for process in self._processes.values():
            process.join()


def fleet_report(reports: Sequence[ShardReport]) -> dict:
    """Fold per-shard reports into one fleet-wide view.

    Per-task rows (fingerprint, summary, timing, error) ride alongside the
    :func:`~repro.obs.metrics.merge_snapshots` fold of every successful
    worker's registry snapshot.
    """
    ordered = sorted(reports, key=lambda r: (r.shard, r.task_id))
    succeeded = [r for r in ordered if r.ok]
    return {
        "tasks": [{
            "shard": r.shard,
            "task_id": r.task_id,
            "ok": r.ok,
            "fingerprint": r.fingerprint,
            "elapsed_seconds": r.elapsed_seconds,
            "summary": r.summary,
            "error": r.error,
        } for r in ordered],
        "ok": len(succeeded) == len(ordered),
        "shards": sorted({r.shard for r in ordered}),
        "failures": len(ordered) - len(succeeded),
        "metrics": merge_snapshots([r.metrics for r in succeeded
                                    if r.metrics is not None]),
    }


__all__ = ["ShardTask", "ShardReport", "ShardPool", "setting_config",
           "fleet_report"]
