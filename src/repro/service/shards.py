"""Multi-city sharding: a resident dispatch worker pool, one shard per city.

Where :func:`repro.experiments.executor.run_cells` spins a pool up per grid
and tears it down after, the dispatch service keeps a **resident** pool:
one long-lived worker process per city shard, each holding its city's
materialised scenario/oracle warm across however many serve tasks it is
handed over its lifetime.  The pieces deliberately reuse the executor's
machinery — workers fork through the same :func:`pool_context`, resolve
city profiles by name against the same :data:`PROFILE_REGISTRY`, and reset
a traffic-mutated cached oracle before every task — so a shard's result is
the same pure function of ``(setting, policy)`` the batch executor
computes, fingerprints included.

Each worker runs its tasks through a simulated-clock
:class:`~repro.service.loop.DispatchService` over the scenario's recorded
order stream (:func:`~repro.service.loop.serve_recorded`), and reports the
``result_fingerprint``, the result summary, the service stats and a
worker-lifetime :class:`~repro.obs.metrics.MetricsRegistry` snapshot.
:func:`fleet_report` folds the per-shard snapshots into one fleet view via
:func:`~repro.obs.metrics.merge_snapshots`.
"""

from __future__ import annotations

import asyncio
import queue as queue_module
import time
import traceback
from collections import deque
from dataclasses import dataclass, fields
from collections.abc import Mapping, Sequence

from repro.experiments.executor import (
    PROFILE_REGISTRY,
    pool_context,
    register_profile,
    result_fingerprint,
)
from repro.experiments.runner import ExperimentSetting, materialize
from repro.network.graph import SECONDS_PER_HOUR
from repro.obs import get_mode, set_mode
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.sim.engine import SimulationConfig


@dataclass(frozen=True)
class ShardTask:
    """One serve request for a shard: replay its city under a policy.

    ``options`` uses the :class:`~repro.experiments.runner.PolicySpec`
    convention — a tuple of ``(key, value)`` pairs, hashable and picklable.
    """

    task_id: int
    policy: str = "foodmatch"
    options: tuple = ()


@dataclass(frozen=True)
class ShardReport:
    """What a shard worker sends back for one task (or its traceback)."""

    shard: str
    task_id: int
    ok: bool
    error: str | None = None
    fingerprint: str | None = None
    summary: dict | None = None
    stats: dict | None = None
    metrics: dict | None = None
    elapsed_seconds: float = 0.0


def setting_config(setting: ExperimentSetting) -> SimulationConfig:
    """The :class:`SimulationConfig` batch ``run_setting`` derives from a setting."""
    return SimulationConfig(
        delta=setting.resolved_delta(),
        start=setting.start_hour * SECONDS_PER_HOUR,
        end=setting.end_hour * SECONDS_PER_HOUR,
        event_resolution=setting.event_resolution,
    )


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #
def _serve_task(setting: ExperimentSetting, task: ShardTask,
                registry: MetricsRegistry, shard: str,
                started: float) -> ShardReport:
    # Imported here so fork'd workers pay the service import once, lazily,
    # and the module stays importable without asyncio running.
    from repro.service.loop import DispatchService, serve_recorded

    scenario, oracle = materialize(setting)
    if setting.repair_fraction is not None:
        oracle.repair_fraction = setting.repair_fraction
    else:
        oracle.__dict__.pop("repair_fraction", None)
    service = DispatchService(scenario, task.policy, dict(task.options),
                              config=setting_config(setting), oracle=oracle,
                              registry=registry)
    result = asyncio.run(serve_recorded(service))
    assert result is not None  # nothing stops a recorded replay
    return ShardReport(
        shard=shard,
        task_id=task.task_id,
        ok=True,
        fingerprint=result_fingerprint(result),
        summary=result.summary(),
        stats=service.stats(),
        metrics=registry.snapshot(),
        elapsed_seconds=time.perf_counter() - started,
    )


def _shard_worker(shard: str, profile_name: str,
                  setting_kwargs: dict[str, object], obs_mode: str,
                  task_queue, report_queue) -> None:
    """Resident worker loop: serve tasks until the ``None`` sentinel.

    The worker's scenario cache (via :func:`materialize`) and its metrics
    registry live for the whole process, so repeat tasks on the same shard
    reuse the city's heavy artifacts instead of rebuilding them.
    """
    set_mode(obs_mode)
    registry = MetricsRegistry()
    while True:
        task = task_queue.get()
        if task is None:
            break
        started = time.perf_counter()
        try:
            profile = PROFILE_REGISTRY.get(profile_name)
            if profile is None:
                raise KeyError(
                    f"city profile {profile_name!r} is not registered in "
                    f"this shard worker (known: {sorted(PROFILE_REGISTRY)})")
            setting = ExperimentSetting(profile=profile, **setting_kwargs)
            report = _serve_task(setting, task, registry, shard, started)
        except Exception:
            report = ShardReport(
                shard=shard, task_id=task.task_id, ok=False,
                error=traceback.format_exc(),
                elapsed_seconds=time.perf_counter() - started)
        report_queue.put(report)


# --------------------------------------------------------------------------- #
# driver side
# --------------------------------------------------------------------------- #
class ShardPool:
    """One resident dispatch worker per city shard.

    >>> with ShardPool({"cityA": setting_a, "cityB": setting_b}) as pool:
    ...     pool.submit("cityA", ShardTask(0))
    ...     pool.submit("cityB", ShardTask(1))
    ...     reports = pool.collect()
    ...     fleet = fleet_report(reports)

    Tasks on different shards run concurrently; tasks on the same shard
    queue FIFO on that shard's persistent task queue.  ``close()`` (or the
    context manager exit) sends each worker the shutdown sentinel and
    joins it.

    **Dead-worker recovery.**  Every submitted task stays on its shard's
    pending deque until its report comes back, so a worker that dies
    mid-task (OOM-killed, segfaulted, or :meth:`kill_worker`-injected)
    loses nothing: :meth:`collect` polls rather than blocking forever,
    notices the corpse, restarts the worker under bounded exponential
    backoff, and re-queues the shard's pending tasks in order.  A worker
    that managed to report before dying produces a duplicate report for
    the re-queued task; duplicates (reports whose task is no longer
    pending) are counted and dropped.  More than ``restart_limit``
    restarts of one shard raises — a crash-looping city is an error, not
    a retry loop.
    """

    def __init__(self, shards: Mapping[str, ExperimentSetting], *,
                 restart_limit: int = 3, backoff_base: float = 0.25,
                 backoff_cap: float = 4.0, poll_interval: float = 0.2) -> None:
        if not shards:
            raise ValueError("ShardPool needs at least one shard")
        self._shards = dict(shards)
        self._context = pool_context()
        self._report_queue = self._context.Queue()
        self._task_queues: dict[str, object] = {}
        self._processes: dict[str, object] = {}
        self._pending: dict[str, deque[ShardTask]] = {}
        self._restarts: dict[str, int] = {}
        self._restart_limit = restart_limit
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._poll_interval = poll_interval
        self.restarts_total = 0
        self.duplicate_reports = 0
        self._outstanding = 0
        self._started = False
        self._closed = False

    def __enter__(self) -> ShardPool:
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def shard_names(self) -> list[str]:
        return sorted(self._shards)

    def start(self) -> None:
        """Fork one resident worker per shard (idempotent)."""
        if self._started:
            return
        self._started = True
        for name in self.shard_names:
            self._pending.setdefault(name, deque())
            self._restarts.setdefault(name, 0)
            self._spawn_worker(name)

    def _spawn_worker(self, name: str) -> None:
        setting = self._shards[name]
        # Fork'd children inherit the registration, like executor pools.
        register_profile(setting.profile)
        setting_kwargs = {
            f.name: getattr(setting, f.name)
            for f in fields(ExperimentSetting) if f.name != "profile"}
        task_queue = self._context.Queue()
        process = self._context.Process(
            target=_shard_worker,
            args=(name, setting.profile.name, setting_kwargs, get_mode(),
                  task_queue, self._report_queue),
            daemon=True)
        process.start()
        self._task_queues[name] = task_queue
        self._processes[name] = process

    def submit(self, shard: str, task: ShardTask) -> None:
        """Queue a task on a shard's persistent queue."""
        if self._closed:
            raise RuntimeError("ShardPool is closed")
        if shard not in self._shards:
            raise KeyError(f"unknown shard {shard!r}; "
                           f"known: {self.shard_names}")
        self.start()
        self._pending[shard].append(task)
        self._task_queues[shard].put(task)
        self._outstanding += 1

    def kill_worker(self, shard: str) -> None:
        """Kill a shard's worker process outright (fault-injection hook).

        The shard's pending tasks stay pending; the next :meth:`collect`
        notices the dead worker and restarts it losslessly.
        """
        process = self._processes.get(shard)
        if process is None:
            raise KeyError(f"shard {shard!r} has no running worker")
        process.terminate()
        process.join()

    def apply_faults(self, injector) -> list[str]:
        """Drain an injector's pending worker kills against this pool.

        Unknown shard names in the plan are ignored (a plan may be shared
        across pools of different cities); returns the shards killed.
        """
        killed = []
        for shard in injector.pending_worker_kills():
            if shard in self._processes:
                self.kill_worker(shard)
                killed.append(shard)
        return killed

    def _restart_worker(self, name: str) -> None:
        """Replace a dead worker and re-queue its pending tasks in order."""
        self._restarts[name] += 1
        self.restarts_total += 1
        if self._restarts[name] > self._restart_limit:
            raise RuntimeError(
                f"shard {name!r} worker died {self._restarts[name]} times "
                f"(restart_limit={self._restart_limit}); giving up")
        backoff = min(self._backoff_cap,
                      self._backoff_base * 2 ** (self._restarts[name] - 1))
        time.sleep(backoff)
        self._processes[name].join()
        # The dead worker's task queue may hold undelivered tasks and is in
        # an unknowable state; a fresh queue plus the pending deque is the
        # authoritative re-queue.
        self._spawn_worker(name)
        for task in self._pending[name]:
            self._task_queues[name].put(task)

    def _check_workers(self) -> None:
        """Restart any dead worker that still owes reports."""
        for name, process in self._processes.items():
            if self._pending[name] and not process.is_alive():
                self._restart_worker(name)

    def collect(self, count: int | None = None) -> list[ShardReport]:
        """Block until ``count`` (default: all outstanding) reports arrive.

        Polls the report queue so a dead worker is noticed (and restarted,
        its pending tasks re-queued) instead of blocking forever.
        """
        if count is None:
            count = self._outstanding
        if count > self._outstanding:
            raise ValueError(
                f"cannot collect {count} reports with only "
                f"{self._outstanding} outstanding")
        reports = []
        while len(reports) < count:
            try:
                report = self._report_queue.get(timeout=self._poll_interval)
            except queue_module.Empty:
                self._check_workers()
                continue
            pending = self._pending.get(report.shard)
            match = next((t for t in pending or ()
                          if t.task_id == report.task_id), None)
            if match is None:
                # The original worker reported, died, and the re-queued
                # copy reported again — first answer won, drop this one.
                self.duplicate_reports += 1
                continue
            pending.remove(match)
            reports.append(report)
            self._outstanding -= 1
        return reports

    def close(self) -> None:
        """Send every worker the shutdown sentinel and join it.

        Robust against dead workers: a corpse is joined directly (its
        queue has no reader, so no sentinel is sent), and workers that
        ignore the sentinel are terminated after a grace period.
        """
        if self._closed:
            return
        self._closed = True
        for name, process in self._processes.items():
            if process.is_alive():
                self._task_queues[name].put(None)
        for process in self._processes.values():
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join()


def fleet_report(reports: Sequence[ShardReport]) -> dict:
    """Fold per-shard reports into one fleet-wide view.

    Per-task rows (fingerprint, summary, timing, error) ride alongside the
    :func:`~repro.obs.metrics.merge_snapshots` fold of every successful
    worker's registry snapshot.
    """
    ordered = sorted(reports, key=lambda r: (r.shard, r.task_id))
    succeeded = [r for r in ordered if r.ok]
    return {
        "tasks": [{
            "shard": r.shard,
            "task_id": r.task_id,
            "ok": r.ok,
            "fingerprint": r.fingerprint,
            "elapsed_seconds": r.elapsed_seconds,
            "summary": r.summary,
            "error": r.error,
        } for r in ordered],
        "ok": len(succeeded) == len(ordered),
        "shards": sorted({r.shard for r in ordered}),
        "failures": len(ordered) - len(succeeded),
        "metrics": merge_snapshots([r.metrics for r in succeeded
                                    if r.metrics is not None]),
    }


__all__ = ["ShardTask", "ShardReport", "ShardPool", "setting_config",
           "fleet_report"]
