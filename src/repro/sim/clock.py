"""The continuous-time event clock: a unified, deterministic event queue.

Before this module the simulator was *quantized*: the traffic and fleet
controllers were advanced only at accumulation-window boundaries, so an
incident landing mid-window, a driver logging out mid-delivery or a road
closing under a moving vehicle were silently deferred to the next boundary.
:class:`EventClock` gives every dynamic subsystem a shared continuous clock:

* every change point of the scenario's timelines — traffic event starts and
  ends, fleet supply-event starts and ends, per-vehicle shift logins and
  logouts — becomes one :class:`SimEvent` with an exact timestamp;
* events are drained in a **stable total order**: ``(timestamp,
  source-priority, sequence)``.  Same-timestamp events apply the road
  network's change before the fleet reacts (matching the long-standing
  window-boundary ordering of ``traffic.advance`` before ``fleet.advance``),
  and the insertion sequence breaks any remaining tie deterministically;
* the engine's loop becomes "drain events up to the next decision epoch":
  between two policy invocations the simulator advances every vehicle to
  each event timestamp in turn, applies the event's controller there, and
  resumes movement under the re-weighted network.

Backward compatibility is structural: an event whose timestamp coincides
with a window boundary is *discarded* from the queue, because the engine's
per-boundary controller advance (which recomputes the full desired state
idempotently) already covers it.  A timeline whose timestamps are all
boundary-aligned therefore drains zero sub-window events and the continuous
engine replays the window-mode engine bit for bit — the golden invariant the
property tests and the end-to-end benchmark assert.

The module also provides alignment helpers (:func:`align_traffic_timeline`,
:func:`align_fleet_plan`, :func:`align_scenario_events`) that snap a
scenario's event timestamps onto the window grid — event starts floor, ends
ceil, duty blocks widened likewise — which is how those golden comparisons
build their boundary-aligned twins.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING
from collections.abc import Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.fleet.controller import FleetPlan
    from repro.orders.vehicle import Vehicle
    from repro.traffic.events import TrafficTimeline
    from repro.workload.generator import Scenario

#: Application order of same-timestamp events: the road network moves before
#: the fleet reacts, mirroring the engine's window-boundary ordering
#: (``TrafficController.advance`` runs before ``FleetController.advance``).
SOURCE_PRIORITIES: dict[str, int] = {"traffic": 0, "fleet": 1}


@dataclass(frozen=True, slots=True)
class SimEvent:
    """One scheduled change point on the simulation's continuous clock.

    ``priority`` is the source priority from :data:`SOURCE_PRIORITIES` and
    ``seq`` the queue-insertion sequence number; together with ``time`` they
    define the stable total order ``(time, priority, seq)`` every drain
    follows.
    """

    time: float
    source: str
    priority: int
    seq: int

    @property
    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)


class EventClock:
    """A deterministic min-queue of :class:`SimEvent` change points.

    The queue is immutable in spirit — the engine builds it once from the
    scenario's timelines and only ever drains it forward — but ``push`` is
    public so tests and custom harnesses can schedule extra epochs.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, int], SimEvent]] = []
        self._seq = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def push(self, time: float, source: str) -> SimEvent:
        """Schedule one event; returns the queued :class:`SimEvent`.

        ``source`` must be a key of :data:`SOURCE_PRIORITIES`.  Timestamps
        must be finite — the clock orders real epochs, not sentinels.
        """
        time = float(time)
        if not math.isfinite(time):
            raise ValueError(f"event timestamps must be finite (got {time})")
        priority = SOURCE_PRIORITIES.get(source)
        if priority is None:
            raise ValueError(f"unknown event source {source!r}; "
                             f"known: {sorted(SOURCE_PRIORITIES)}")
        event = SimEvent(time, source, priority, self._seq)
        self._seq += 1
        heapq.heappush(self._heap, (event.sort_key, event))
        return event

    @classmethod
    def from_timelines(cls, traffic: TrafficTimeline | None = None,
                       fleet_plan: FleetPlan | None = None,
                       vehicles: Iterable[Vehicle] = (),
                       start: float = -math.inf,
                       end: float = math.inf) -> EventClock:
        """Build the clock for one simulation horizon.

        Traffic change points are the timeline's event start/end epochs;
        fleet change points are the supply-event epochs plus every scheduled
        shift login/logout (vehicles without a schedule entry contribute
        their own ``shift_start``/``shift_end``, the seed duty model).  Only
        epochs strictly inside ``(start, end)`` are queued: epochs at or
        before ``start`` are covered by the first boundary advance, epochs at
        or after ``end`` never take effect (the post-horizon drain applies no
        controller changes, exactly like the window-mode engine).
        """
        clock = cls()
        if traffic is not None:
            for epoch in traffic.boundaries():
                if start < epoch < end:
                    clock.push(epoch, "traffic")
        if fleet_plan is not None:
            epochs: set[float] = set(fleet_plan.timeline.boundaries())
            for schedule in fleet_plan.schedules.values():
                epochs.update(schedule.boundaries())
            scheduled = set(fleet_plan.schedules)
            for vehicle in vehicles:
                if vehicle.vehicle_id not in scheduled:
                    epochs.add(vehicle.shift_start)
                    epochs.add(vehicle.shift_end)
            for epoch in sorted(epochs):
                if start < epoch < end:
                    clock.push(epoch, "fleet")
        return clock

    # ------------------------------------------------------------------ #
    # inspection / draining
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def peek_time(self) -> float | None:
        """Timestamp of the next queued event; ``None`` when drained."""
        if not self._heap:
            return None
        return self._heap[0][1].time

    def discard_through(self, now: float) -> int:
        """Drop every event with ``time <= now``; returns how many.

        The engine calls this at each window boundary: the boundary-advance
        of the controllers recomputes the complete desired state at ``now``,
        so any event at or before the boundary is already applied and must
        not fire again inside the window.
        """
        dropped = 0
        while self._heap and self._heap[0][1].time <= now:
            heapq.heappop(self._heap)
            dropped += 1
        return dropped

    def pop_due(self, until: float) -> list[SimEvent]:
        """Pop every event strictly before ``until``, in total order."""
        due: list[SimEvent] = []
        while self._heap and self._heap[0][1].time < until:
            due.append(heapq.heappop(self._heap)[1])
        return due

    def pop_groups(self, until: float) -> list[tuple[float, list[SimEvent]]]:
        """Pop events strictly before ``until``, grouped by equal timestamp.

        Groups come back in ascending time; within a group events keep the
        total order (so traffic precedes fleet).  This is the engine's drain
        granularity: vehicles advance once per distinct epoch, then every
        source that fired at that epoch is applied.
        """
        groups: list[tuple[float, list[SimEvent]]] = []
        for event in self.pop_due(until):
            if groups and groups[-1][0] == event.time:
                groups[-1][1].append(event)
            else:
                groups.append((event.time, [event]))
        return groups


# --------------------------------------------------------------------------- #
# window-grid alignment (golden-test / benchmark helpers)
# --------------------------------------------------------------------------- #
def _snap(t: float, delta: float, anchor: float, up: bool) -> float:
    """Snap ``t`` onto the window grid ``anchor + k * delta`` (floor or ceil)."""
    steps = (t - anchor) / delta
    k = math.ceil(steps) if up else math.floor(steps)
    return anchor + k * delta


def align_traffic_timeline(timeline: TrafficTimeline, delta: float,
                           anchor: float) -> TrafficTimeline:
    """Snap every traffic event onto the window grid (starts floor, ends ceil).

    The snapped event covers at least the original interval, so an event
    active during some window is active at that window's boundary — which is
    all the window-mode engine ever observes.  Used to build the
    boundary-aligned twin of a timeline for the continuous-vs-window golden
    comparisons.
    """
    from repro.traffic.events import TrafficTimeline

    aligned = tuple(
        replace(event,
                start=_snap(event.start, delta, anchor, up=False),
                end=_snap(event.end, delta, anchor, up=True))
        for event in timeline)
    return TrafficTimeline(aligned)


def align_fleet_plan(plan: FleetPlan | None, delta: float, anchor: float,
                     vehicles: Iterable[Vehicle] = ()) -> FleetPlan | None:
    """Snap a fleet plan's change points onto the window grid.

    Shift blocks widen to whole windows (login floors, logout ceils; the
    schedule normalisation re-merges any blocks that now touch) and supply
    events snap like traffic events.  ``vehicles`` must carry the fleet the
    plan runs against: a vehicle *without* a schedule entry falls back to
    its own ``shift_start``/``shift_end`` (the seed duty model), and
    :meth:`EventClock.from_timelines` queues exactly those epochs as fleet
    events — so the aligned plan gives every such vehicle an explicit
    snapped single-block schedule, keeping the "aligned scenario drains
    zero sub-window events" contract.  ``None`` passes through.
    """
    if plan is None:
        return None
    from repro.fleet.shifts import FleetTimeline, ShiftSchedule

    schedules = {
        vehicle_id: ShiftSchedule(tuple(
            (_snap(start, delta, anchor, up=False),
             _snap(end, delta, anchor, up=True))
            for start, end in schedule.intervals))
        for vehicle_id, schedule in plan.schedules.items()
    }
    for vehicle in vehicles:
        if vehicle.vehicle_id not in schedules:
            schedules[vehicle.vehicle_id] = ShiftSchedule((
                (_snap(vehicle.shift_start, delta, anchor, up=False),
                 _snap(vehicle.shift_end, delta, anchor, up=True)),))
    timeline = FleetTimeline(tuple(
        replace(event,
                start=_snap(event.start, delta, anchor, up=False),
                end=_snap(event.end, delta, anchor, up=True))
        for event in plan.timeline))
    return replace(plan, schedules=schedules, timeline=timeline)


def align_scenario_events(scenario: Scenario, delta: float,
                          anchor: float) -> Scenario:
    """A copy of ``scenario`` with all event timestamps window-aligned.

    Orders, vehicles, restaurants and the network are shared (not copied);
    only the traffic timeline and the fleet plan are replaced by their
    snapped twins (unscheduled vehicles get explicit snapped schedules —
    see :func:`align_fleet_plan`).  With such a scenario,
    ``event_resolution="continuous"`` drains zero sub-window events and
    must reproduce ``event_resolution="window"`` bit for bit.
    """
    return replace(scenario,
                   traffic=align_traffic_timeline(scenario.traffic, delta, anchor),
                   fleet=align_fleet_plan(scenario.fleet, delta, anchor,
                                          vehicles=scenario.vehicles))


__all__ = [
    "SimEvent",
    "EventClock",
    "SOURCE_PRIORITIES",
    "align_traffic_timeline",
    "align_fleet_plan",
    "align_scenario_events",
]
