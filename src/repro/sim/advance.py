"""Vectorised vehicle advancement: edge-metered movement on path arrays.

The simulation engine moves every vehicle along quickest paths with
*edge-atomic* metering: an edge whose traversal starts before the window
boundary is completed even if it finishes slightly after.  The scalar
reference implementation (kept in :meth:`Simulator._walk_toward_reference
<repro.sim.engine.Simulator>`) pays, per edge, a network ``edge_time`` call
(three dict lookups plus the slot multiplier), a haversine evaluation and a
per-leg bookkeeping call.  On a busy window the engine walks hundreds of
edges, all in interpreted Python.

:class:`PathWalker` replaces that inner loop with array operations while
producing **bit-identical** results:

* per (source, destination) pair the expanded quickest path is turned into
  flat numpy arrays of static traversal times and leg kilometres, cached
  until the network's ``mutation_epoch`` moves (traffic events);
* metering a vehicle through a window prepends the vehicle clock to the
  scaled time array and takes one :func:`numpy.cumsum` — numpy's cumulative
  sum accumulates strictly sequentially, so every prefix equals the scalar
  ``clock += travel`` chain float for float;
* the congestion multiplier is constant within a 1-hour slot, so a single
  :func:`numpy.searchsorted` finds how many edges start before the window
  boundary (or the slot boundary, whichever comes first — the walk then
  resumes with the next slot's multiplier, exactly like the scalar loop);
* driven-kilometre bookkeeping applies the same prepend-and-cumsum trick
  through :meth:`Vehicle.record_legs <repro.orders.vehicle.Vehicle>`.

The property tests drive both implementations over random route plans and
assert exact equality of clocks, positions and distance accounting.
"""

from __future__ import annotations

import math

import numpy as np

from repro.network.distance_oracle import DistanceOracle, LRUCache
from repro.network.geometry import haversine_distance
from repro.network.graph import SECONDS_PER_HOUR
from repro.orders.vehicle import Vehicle

#: (expanded node path, static edge traversal times, edge lengths in km)
PathSegments = tuple[list[int], np.ndarray, np.ndarray]

#: Cache sentinel distinguishing "pair never resolved" from the cached
#: answer "destination unreachable" (a severed closure cut the pair apart).
_MISS = object()


class PathWalker:
    """Cached path-segment arrays plus the vectorised metering kernel."""

    #: Bound on cached (source, dest) segment arrays — mirrors the oracle's
    #: own path-cache discipline (window truncations mint a new source node
    #: per partial walk, so the key space grows all day without a cap).
    SEGMENT_CACHE_SIZE = 16384

    def __init__(self, oracle: DistanceOracle) -> None:
        self._oracle = oracle
        self._epoch = oracle.network.mutation_epoch
        self._segments = LRUCache(self.SEGMENT_CACHE_SIZE)
        # Leg lengths never change under weight-only mutations; this cache
        # survives epoch invalidations so haversines are computed once ever
        # (bounded by the network's edge count).
        self._km: dict[tuple[int, int], float] = {}

    def segments(self, source: int, dest: int) -> PathSegments | None:
        """Path node sequence and per-edge static time / km arrays.

        Cached per (source, dest); any network mutation (``mutation_epoch``
        bump) drops the cached traversal times, because live traffic
        overrides change the static effective weights in place.  The path
        itself is re-read from the oracle, whose own path cache is evicted
        with exact scope by ``apply_traffic_updates``.  This is what makes
        the walk *event-splittable*: the continuous-time engine stops every
        walk at each event timestamp, the event's weight changes bump the
        epoch, and the resumed walk re-plans from the vehicle's current node
        — so traffic re-weighting (or a reroute around a fresh closure)
        applies to the remaining edges of the journey.

        Returns ``None`` when ``dest`` is unreachable from ``source`` (a
        severed closure cut the pair apart); the verdict is cached like any
        path until the next mutation.
        """
        network = self._oracle.network
        epoch = network.mutation_epoch
        if epoch != self._epoch:
            self._segments.clear()
            self._epoch = epoch
        key = (source, dest)
        cached = self._segments.get(key, _MISS)
        if cached is not _MISS:
            return cached
        path = self._oracle.path_or_none(source, dest)
        if path is None:
            self._segments.put(key, None)
            return None
        count = len(path) - 1
        times = np.empty(max(0, count), dtype=np.float64)
        kms = np.empty(max(0, count), dtype=np.float64)
        km_cache = self._km
        static_edge_time = network.static_edge_time
        coord = network.coord
        for i in range(count):
            u, v = path[i], path[i + 1]
            times[i] = static_edge_time(u, v)
            km = km_cache.get((u, v))
            if km is None:
                km = haversine_distance(coord(u), coord(v))
                km_cache[(u, v)] = km
            kms[i] = km
        cached = (path, times, kms)
        self._segments.put(key, cached)
        return cached

    def walk(self, vehicle: Vehicle, dest: int, clock: float, until: float) -> float:
        """Walk ``vehicle`` toward ``dest``; returns the updated clock.

        Edge-atomic semantics of the scalar reference: an edge is taken iff
        the clock at its start is strictly before ``until``, and its
        traversal time uses the congestion multiplier of the slot the edge
        *starts* in.  The vehicle may end mid-path when the window runs out.

        Because every prefix of the metering cumsum equals the scalar
        sequential ``clock += travel`` chain, splitting one walk at an
        arbitrary set of intermediate ``until`` boundaries (window edges,
        congestion-slot edges, or the continuous engine's event timestamps)
        reproduces the unsplit walk float for float — the conservation
        property the sub-window event drain relies on.

        When ``dest`` is unreachable (severed closure), the vehicle stays
        put and waits for the road to reopen: the clock advances to
        ``until`` with no movement and no distance recorded.
        """
        segments = self.segments(vehicle.node, dest)
        if segments is None:
            return until
        path, static_times, kms = segments
        total = static_times.size
        taken = 0
        multiplier = self._oracle.network.profile.multiplier
        while taken < total and clock < until:
            m = multiplier(clock)
            slot_end = (math.floor(clock / SECONDS_PER_HOUR) + 1.0) * SECONDS_PER_HOUR
            remaining = static_times[taken:]
            cum = np.empty(remaining.size + 1, dtype=np.float64)
            cum[0] = clock
            np.multiply(remaining, m, out=cum[1:])
            np.cumsum(cum, out=cum)
            # cum[i] is the clock *before* the i-th remaining edge; edges are
            # taken while that stays below the window boundary, and the slot
            # multiplier stays valid while it stays below the slot boundary.
            bound = until if until <= slot_end else slot_end
            count = int(np.searchsorted(cum[:-1], bound, side="left"))
            if count == 0:  # pragma: no cover - loop guards make this unreachable
                break
            clock = float(cum[count])
            taken += count
        if taken:
            vehicle.record_legs(kms[:taken])
            vehicle.node = path[taken]
        return clock


__all__ = ["PathWalker", "PathSegments"]
