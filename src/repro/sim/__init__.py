"""Event-driven simulation of a food-delivery day.

The simulator replays an order stream against a vehicle fleet under a chosen
assignment policy, exactly mirroring the operational loop of the paper's
evaluation (Sec. V-B):

* orders are accumulated in windows of length Δ;
* at the end of each window the policy assigns (batches of) orders to
  vehicles, with the policy's own measured decision time charged to the
  assignment-time term of Eq. 2;
* vehicles drive their quickest route plans edge by edge on the road
  network, wait at restaurants until the food is ready, and drop orders off;
* orders left unassigned for 30 minutes are rejected (penalty Ω);
* FoodMatch-style policies may reshuffle: orders assigned but not yet picked
  up are released back into the pool each window.

Dynamic traffic and fleet events resolve either at window boundaries (the
default) or — with ``event_resolution="continuous"`` — at their exact
timestamps through the deterministic event clock of :mod:`repro.sim.clock`,
which splits vehicle movement at every change point so re-weighted roads,
severed closures and mid-window logouts take effect at their true epochs.

The per-order, per-window and per-vehicle records feed the metric
definitions of the evaluation: extra delivery time (XDT), orders per
kilometre, vehicle waiting time, rejection rate and overflown windows.
"""

from repro.sim.clock import (
    EventClock,
    SimEvent,
    align_fleet_plan,
    align_scenario_events,
    align_traffic_timeline,
)
from repro.sim.metrics import OrderOutcome, SimulationResult, WindowRecord
from repro.sim.engine import EVENT_RESOLUTIONS, SimulationConfig, Simulator, simulate

__all__ = [
    "OrderOutcome",
    "SimulationResult",
    "WindowRecord",
    "EVENT_RESOLUTIONS",
    "SimulationConfig",
    "Simulator",
    "simulate",
    "EventClock",
    "SimEvent",
    "align_traffic_timeline",
    "align_fleet_plan",
    "align_scenario_events",
]
