"""The accumulation-window simulation engine (Fig. 5 operational loop).

The :class:`Simulator` replays a :class:`~repro.workload.generator.Scenario`
under an :class:`~repro.core.policy.AssignmentPolicy`.  Time advances in
accumulation windows of length Δ.  At the end of every window the engine:

1. advances every vehicle along its route plan up to the window boundary
   (edges are traversed atomically; a vehicle finishes the edge it is on),
2. rejects orders that have waited unassigned for longer than the rejection
   timeout (30 minutes by default),
3. optionally *reshuffles*: releases orders that are assigned but not yet
   picked up back into the unassigned pool (FoodMatch only),
4. invokes the policy on the pool and the on-duty vehicles, measuring its
   wall-clock decision time (this is what the overflow figures report),
5. applies the returned assignments.

After the last window the simulation runs the remaining route plans to
completion so that every assigned order is either delivered or accounted for.

When the scenario carries a traffic timeline (incidents, closures, zonal
rush hours — see :mod:`repro.traffic`), a :class:`TrafficController` is
advanced at the start of every window, *before* vehicles move, so each
window's movement and assignment decisions see the road weights the events
imply for that window.

When the scenario carries a fleet plan (shift schedules, supply events,
driver behaviour — see :mod:`repro.fleet`), a :class:`FleetController` is
advanced at the same boundary: vehicles whose shift ended since the last
window hand their not-yet-picked-up orders back to the pool (the forced
handoff; onboard orders are still delivered under the paper's
no-abandonment rule), offline vehicles are excluded from the window's
``V(l)`` — and therefore from every FoodGraph first-mile candidate set —
drivers may stochastically decline the offers the policy produced (declined
batches re-enter the next window's pool), kitchens add sampled delays on
top of nominal prep times, and idle vehicles drift toward demand hot-spots
between windows.  Without a plan the engine is bit-for-bit the static-fleet
simulator.

**Continuous event resolution.**  With the default
``event_resolution="window"`` both controllers resolve at window boundaries
only — an event landing mid-window takes effect at the *next* boundary.
``event_resolution="continuous"`` puts the dynamics on the exact event
clock (:mod:`repro.sim.clock`): every timeline change point strictly inside
a window becomes a drain epoch at which the engine advances all vehicles to
the epoch (splitting their metered walks there), applies the traffic and/or
fleet change, and resumes movement under the re-weighted network — so an
incident slows the *remaining* edges of an in-flight journey, a severed
closure forces an immediate reroute (or an in-place wait when no detour
exists), and a driver logging out mid-window triggers the forced handoff at
the true logout epoch.  Policy decisions still happen at window boundaries
(Δ is the paper's decision cadence); only the *world* moves continuously.
A timeline whose change points are all boundary-aligned drains zero
sub-window events, which makes continuous mode bit-identical to window mode
on such scenarios (golden-tested).
"""

from __future__ import annotations

import heapq
from contextlib import nullcontext
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.core.policy import Assignment, AssignmentPolicy
from repro.fleet.controller import FleetController
from repro.network import kernels as _kernels
from repro.network.geometry import haversine_distance
from repro.obs import tracer_for_run
from repro.obs.telemetry import Telemetry
from repro.obs.trace import use_tracer
from repro.resilience.context import use_ladders
from repro.orders.costs import CostModel
from repro.sim.advance import PathWalker
from repro.sim.clock import EventClock
from repro.orders.order import Order
from repro.orders.vehicle import Vehicle, VehicleState
from repro.sim.metrics import OrderOutcome, SimulationResult, WindowRecord
from repro.traffic.controller import TrafficController
from repro.workload.generator import Scenario

#: The recognised event-resolution modes of :class:`SimulationConfig`.
EVENT_RESOLUTIONS = ("window", "continuous")

#: Where a :class:`Simulator` takes its order stream from: ``"scenario"``
#: iterates the scenario's recorded orders (batch mode), ``"external"``
#: accepts orders only through :meth:`Simulator.submit` (the dispatch
#: service's live-ingest mode).
ORDER_SOURCES = ("scenario", "external")


@dataclass(frozen=True)
class SimulationConfig:
    """Operational constraints of the simulated delivery service (Sec. V-B)."""

    delta: float = 180.0
    start: float = 0.0
    end: float = 86400.0
    rejection_timeout: float = 1800.0
    omega: float = 7200.0
    #: extra simulated time after the last window to flush in-flight orders
    drain_seconds: float = 3600.0
    #: whether the policy's measured decision time delays the window clock
    charge_decision_time: bool = False
    #: run the window hot path on the array kernels (vectorised vehicle
    #: advancement, batched SDT prefetch).  Bit-identical to the scalar
    #: reference path, which ``False`` selects for the equivalence property
    #: tests and the end-to-end benchmark's reference mode.
    vectorized: bool = True
    #: ``"window"`` resolves traffic/fleet events at window boundaries only
    #: (the historical engine); ``"continuous"`` drains them at their exact
    #: timestamps through the event clock (:mod:`repro.sim.clock`).  With a
    #: boundary-aligned timeline the two are bit-identical.
    event_resolution: str = "window"

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.event_resolution not in EVENT_RESOLUTIONS:
            raise ValueError(
                f"unknown event_resolution {self.event_resolution!r}; "
                f"known: {EVENT_RESOLUTIONS}")
        if self.end <= self.start:
            raise ValueError("simulation end must come after start")
        if self.rejection_timeout < 0:
            raise ValueError("rejection_timeout must be non-negative "
                             f"(got {self.rejection_timeout})")
        if self.omega < 0:
            raise ValueError(f"omega must be non-negative (got {self.omega})")
        if self.drain_seconds < 0:
            raise ValueError("drain_seconds must be non-negative "
                             f"(got {self.drain_seconds})")


class Simulator:
    """Replays one scenario under one policy and collects metrics."""

    def __init__(self, scenario: Scenario, policy: AssignmentPolicy,
                 cost_model: CostModel, config: SimulationConfig | None = None,
                 traffic: TrafficController | None = None,
                 fleet: FleetController | None = None,
                 tracer=None, order_source: str = "scenario",
                 resilience=None) -> None:
        if order_source not in ORDER_SOURCES:
            raise ValueError(f"unknown order_source {order_source!r}; "
                             f"known: {ORDER_SOURCES}")
        self.order_source = order_source
        #: Optional :class:`repro.resilience.ResilienceManager`.  ``None``
        #: (the default) installs no backend ladders at all — every window
        #: runs the exact pre-resilience code paths, bit-identically.
        self.resilience = resilience
        self.scenario = scenario
        self.policy = policy
        self.cost_model = cost_model
        self.config = config or SimulationConfig()
        if tracer is None:
            # Honours the session-wide --obs mode: the no-op singleton by
            # default, a recording tracer when the run opted in.
            tracer = tracer_for_run(
                f"{scenario.name}/{policy.name}",
                meta={"scenario": scenario.name, "policy": policy.name})
        self._tracer = tracer
        if traffic is None:
            timeline = getattr(scenario, "traffic", None)
            if timeline:
                traffic = TrafficController(cost_model.oracle, timeline)
        self.traffic = traffic
        if fleet is None:
            plan = getattr(scenario, "fleet", None)
            if plan is not None:
                fleet = FleetController(plan, cost_model.oracle,
                                        scenario.restaurants)
        self.fleet = fleet
        self._walker = (PathWalker(cost_model.oracle)
                        if self.config.vectorized else None)
        self.vehicles = scenario.fresh_vehicles()
        # Continuous mode: queue every timeline change point strictly inside
        # the horizon.  Boundary-aligned (or absent) timelines leave the
        # queue empty between boundaries, which is exactly window mode.
        self._clock: EventClock | None = None
        if self.config.event_resolution == "continuous":
            self._clock = EventClock.from_timelines(
                traffic=self.traffic.timeline if self.traffic is not None else None,
                fleet_plan=self.fleet.plan if self.fleet is not None else None,
                vehicles=self.vehicles,
                start=self.config.start, end=self.config.end)
        self._window_declines = 0
        self._window_handoffs = 0
        self._vehicle_clock: dict[int, float] = {
            v.vehicle_id: max(self.config.start, v.shift_start) for v in self.vehicles}
        self._outcomes: dict[int, OrderOutcome] = {}
        self._windows: list[WindowRecord] = []
        self._pool: dict[int, Order] = {}
        stream = scenario.orders if order_source == "scenario" else ()
        self._order_iter = iter(sorted(
            (o for o in stream
             if self.config.start <= o.placed_at < self.config.end),
            key=lambda o: (o.placed_at, o.order_id)))
        self._next_order: Order | None = next(self._order_iter, None)
        #: externally submitted orders awaiting ingestion (the dispatch
        #: service's ingest buffer): a heap keyed (placed_at, order_id) so
        #: ingestion pops in exactly the order the batch stream iterator
        #: yields — the heart of the service/batch fingerprint identity.
        self._external: list[tuple[float, int, Order]] = []
        #: scenario-stream orders already pulled from the iterator; a restored
        #: simulator fast-forwards the rebuilt iterator by this count.
        self._consumed_orders = 0
        #: boundary up to which ingestion has run; a submitted order placed
        #: before it arrives too late to be replayed deterministically.
        self._ingested_until = self.config.start
        #: every epoch at which the traffic controller advanced, in call
        #: order.  Hub-label repair is sequence-dependent (repaired labels
        #: differ from a fresh build in the last ULP), so checkpoint/restore
        #: replays this exact sequence on a fresh oracle instead of trying to
        #: snapshot label state.
        self._traffic_epochs: list[float] = []
        self._started = False
        self._finalized = False
        self._next_window_start = self.config.start
        self._cache_info_before: dict[str, dict[str, int]] | None = None
        self._counters_before: dict[str, int] | None = None

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #
    @property
    def next_window_start(self) -> float:
        """Start of the next accumulation window (``config.start`` initially)."""
        return self._next_window_start

    @property
    def started(self) -> bool:
        """Whether any window (or the drain) has run."""
        return self._started

    @property
    def finalized(self) -> bool:
        """Whether :meth:`finalize` has produced the result."""
        return self._finalized

    @property
    def horizon_complete(self) -> bool:
        """Whether every accumulation window of the horizon has run."""
        return self._next_window_start >= self.config.end

    @property
    def window_records(self) -> list[WindowRecord]:
        """The per-window bookkeeping so far (read-only by convention)."""
        return self._windows

    @property
    def pool_size(self) -> int:
        """Number of orders currently waiting unassigned in the pool."""
        return len(self._pool)

    @property
    def pending_external_count(self) -> int:
        """Submitted-but-not-yet-ingested external orders."""
        return len(self._external)

    def outcome_for(self, order_id: int) -> OrderOutcome | None:
        """The outcome record of an ingested order (``None`` if unknown)."""
        return self._outcomes.get(order_id)

    def submit(self, orders: Iterable[Order]) -> int:
        """Queue externally arriving orders for ingestion (service mode).

        Orders are buffered on a heap keyed ``(placed_at, order_id)`` and
        ingested by the first window whose end lies past their placement
        time — byte-for-byte the treatment the batch scenario stream gets,
        which is what makes a :class:`Simulator` fed its scenario's own
        recorded stream through here fingerprint-identical to ``run()``.

        Raises :class:`ValueError` for an order placed before a boundary
        that ingestion already passed: admitting it would rewrite history.
        """
        if self._finalized:
            raise RuntimeError("cannot submit orders to a finalized Simulator")
        count = 0
        for order in orders:
            if order.placed_at < self._ingested_until:
                raise ValueError(
                    f"late arrival: order {order.order_id} was placed at "
                    f"t={order.placed_at:.3f} but ingestion has already "
                    f"passed t={self._ingested_until:.3f}; deterministic "
                    "replay requires orders to arrive before the window "
                    "that would ingest them fires")
            heapq.heappush(self._external, (order.placed_at, order.order_id, order))
            count += 1
        return count

    def run(self) -> SimulationResult:
        """Run the whole simulation and return the collected metrics."""
        if self._started:
            raise RuntimeError(
                "Simulator.run() called twice: the first run mutated the "
                "vehicle, pool and outcome state in place, so a second run "
                "would silently replay a corrupted world; construct a fresh "
                "Simulator (or restore a checkpoint) instead")
        return self.resume()

    def resume(self) -> SimulationResult:
        """Run every remaining window to the horizon and finalize.

        Unlike :meth:`run` this does not require a pristine simulator: a
        checkpoint-restored engine (or one that already stepped part of the
        horizon via :meth:`step_window`) continues from its next window
        boundary on the same Δ grid.
        """
        cfg = self.config
        while self._next_window_start < cfg.end:
            window_start = self._next_window_start
            self.step_window(window_start, min(window_start + cfg.delta, cfg.end))
        return self.finalize()

    def step_window(self, window_start: float, window_end: float) -> WindowRecord:
        """Run one accumulation window — the body of the Fig. 5 loop.

        This is the single code path shared by batch :meth:`run` and the
        dispatch service's clock-driven loop: controllers advance to the
        boundary, sub-window events drain (continuous mode), vehicles move,
        orders ingest, stale orders reject, the policy assigns, and the
        fleet plans repositioning.  Returns the window's record.
        """
        cfg = self.config
        if self._finalized:
            raise RuntimeError("cannot step a finalized Simulator")
        if not window_start < window_end <= cfg.end:
            raise ValueError(
                f"invalid window [{window_start}, {window_end}) for a "
                f"horizon ending at {cfg.end}")
        self._begin()
        tracer = self._tracer
        manager = self.resilience
        if manager is not None:
            # Fault windows are declared in simulated time; trip them before
            # anything in this window runs.
            manager.begin_window(window_start)
        # The tracer is installed as the ambient current tracer so the
        # instrumented layers below the engine (policy pipeline, cost model,
        # oracle, hub labels) report into this run's span tree without any
        # signature changes.  The ladder registry rides the same idiom: with
        # no manager, current_ladders() stays None and every kernel keeps
        # its exact single-backend path.
        ladders = (use_ladders(manager.ladders) if manager is not None
                   else nullcontext())
        with use_tracer(tracer), ladders:
            with tracer.span("engine.window"):
                self._window_declines = 0
                self._window_handoffs = 0
                with tracer.span("engine.controllers"):
                    self._apply_controllers(window_start)
                if self._clock is not None:
                    with tracer.span("engine.event_drain"):
                        self._drain_subwindow_events(window_start, window_end)
                with tracer.span("engine.advance"):
                    self._advance_all_vehicles(window_end)
                with tracer.span("engine.ingest"):
                    self._ingest_orders(window_end)
                self._reject_stale_orders(window_end)
                if self.policy.reshuffle:
                    with tracer.span("engine.reshuffle"):
                        self._release_unpicked_orders(window_end)
                self._run_window(window_start, window_end)
                if self.fleet is not None:
                    # Idle drivers drift toward demand during the *next*
                    # window.
                    with tracer.span("engine.reposition"):
                        self.fleet.plan_repositioning(self.vehicles,
                                                      window_end)
        self._next_window_start = window_end
        record = self._windows[-1]
        if manager is not None:
            # The controller sees every window's decision latency (the
            # stopwatch measures in all obs modes) and may move a ladder.
            manager.end_window(record.decision_seconds)
        return record

    def finalize(self) -> SimulationResult:
        """Drain in-flight route plans and return the collected metrics."""
        if self._finalized:
            raise RuntimeError(
                "Simulator.finalize() called twice; the result was already "
                "returned")
        self._begin()
        cfg = self.config
        tracer = self._tracer
        with use_tracer(tracer):
            with tracer.span("engine.drain"):
                self._drain(cfg.end + cfg.drain_seconds)
                self._reject_stale_orders(cfg.end + cfg.drain_seconds, final=True)
        self._finalized = True
        cache_stats = self._cache_stats_since(self._cache_info_before or {})
        telemetry = (self._collect_telemetry(self._counters_before, cache_stats)
                     if tracer.enabled else None)
        return SimulationResult(
            policy_name=self.policy.name,
            city_name=self.scenario.name,
            delta=cfg.delta,
            outcomes=self._outcomes,
            windows=self._windows,
            vehicles=self.vehicles,
            omega=cfg.omega,
            simulated_seconds=cfg.end - cfg.start,
            cache_stats=cache_stats,
            telemetry=telemetry,
            resilience=(self.resilience.snapshot()
                        if self.resilience is not None else None),
        )

    def _begin(self) -> None:
        """First-touch snapshots of the shared oracle/cost-model counters."""
        if self._started:
            return
        self._started = True
        self._cache_info_before = self.cost_model.oracle.cache_info()
        self._counters_before = ((self._oracle_counters() | self._cost_counters())
                                 if self._tracer.enabled else None)

    def _oracle_counters(self) -> dict[str, int]:
        """Cumulative oracle work counters (snapshotted like the caches)."""
        oracle = self.cost_model.oracle
        return {"queries": oracle.query_count,
                "batch_queries": getattr(oracle, "batch_query_count", 0),
                "sssp_runs": getattr(oracle, "sssp_runs", 0)}

    def _cost_counters(self) -> dict[str, int]:
        """Cumulative cost-model work counters (snapshotted like the caches)."""
        return {"route_plans": getattr(self.cost_model, "plan_calls", 0)}

    def _collect_telemetry(self, counters_before: dict[str, int],
                           cache_stats: dict[str, dict[str, int]]) -> Telemetry:
        """Fold run-scoped counters into the registry and capture the tracer.

        Oracle counters are cumulative across runs (experiment harnesses
        share cached oracles), so like :meth:`_cache_stats_since` this
        attributes only the deltas since run start to this simulation.
        Traffic/fleet controller logs are per-controller and controllers are
        per-run, so their totals fold in directly.
        """
        registry = self._tracer.registry
        for name, value in self._oracle_counters().items():
            registry.counter(f"oracle.{name}").inc(value - counters_before[name])
        for name, value in self._cost_counters().items():
            registry.counter(f"cost.{name}").inc(value - counters_before[name])
        for cache, info in cache_stats.items():
            if cache == "hub_labels":
                for key, value in info.items():
                    registry.gauge(f"oracle.index.{key}").set(value)
                continue
            registry.counter("oracle.cache.hits", cache=cache).inc(info["hits"])
            registry.counter("oracle.cache.misses", cache=cache).inc(info["misses"])
            registry.gauge("oracle.cache.size", cache=cache).set(info["size"])
        if self.traffic is not None:
            log = self.traffic.log
            for name in ("advances", "changed_edges", "repairs", "rebuilds",
                         "severed_edges", "disconnected_nodes"):
                registry.counter(f"traffic.{name}").inc(getattr(log, name))
        if self.fleet is not None:
            log = self.fleet.log
            for name in ("advances", "offers", "declines", "handoff_orders",
                         "repositions"):
                registry.counter(f"fleet.{name}").inc(getattr(log, name))
        meta = {
            "windows": len(self._windows),
            "event_resolution": self.config.event_resolution,
            "kernel_backend": _kernels.kernel_backend(),
        }
        if self.resilience is not None:
            # Ladder state lands twice, deliberately: full per-rung counters
            # for metrics consumers, and a compact meta summary the report
            # footer can render without decoding counter label syntax.
            self.resilience.fold_into(registry)
            meta["resilience"] = self.resilience.telemetry_meta()
        return Telemetry.from_tracer(self._tracer, meta=meta)

    def _cache_stats_since(self, before: dict[str, dict[str, int]],
                           ) -> dict[str, dict[str, int]]:
        """Per-cache counter deltas over this run (oracles may be shared).

        Experiment harnesses reuse one oracle across several policy runs, so
        the cumulative ``cache_info`` counters span runs; subtracting the
        run-start snapshot attributes hits and misses to this simulation
        only.  Sizes and capacities are reported as of the end of the run.

        When the oracle runs on the hub-label backend, a ``"hub_labels"``
        entry reports the index footprint (label entry count and resident
        bytes) as of the end of the run, so the scalability experiments see
        index memory next to the cache hit rates.
        """
        stats: dict[str, dict[str, int]] = {}
        oracle = self.cost_model.oracle
        for name, info in oracle.cache_info().items():
            base = before.get(name, {})
            stats[name] = {
                "hits": info["hits"] - base.get("hits", 0),
                "misses": info["misses"] - base.get("misses", 0),
                "size": info["size"],
                "capacity": info["capacity"],
            }
        index_info = getattr(oracle, "index_info", None)
        if index_info is not None:
            footprint = index_info()
            if footprint is not None:
                stats["hub_labels"] = dict(footprint)
        return stats

    # ------------------------------------------------------------------ #
    # controllers and the event clock
    # ------------------------------------------------------------------ #
    def _apply_controllers(self, now: float,
                           sources: set[str] | None = None) -> None:
        """Bring the dynamic subsystems up to ``now``.

        ``sources`` restricts the advance to the subsystems whose events
        fired at ``now`` (the sub-window drain); ``None`` advances both (the
        window-boundary full recompute).  Traffic always applies before the
        fleet — the weights a logging-out driver's handoff replanning sees
        are the ones in force at the epoch.
        """
        if self.traffic is not None and (sources is None or "traffic" in sources):
            # Weights from this epoch onward reflect the events active at it;
            # vehicles and the policy both see the updated network.  The
            # epoch is recorded so checkpoint/restore can replay the exact
            # oracle mutation sequence (hub-label repair is path-dependent).
            self.traffic.advance(now)
            self._traffic_epochs.append(now)
        if self.fleet is not None and (sources is None or "fleet" in sources):
            # Drivers that logged out since the last advance hand their
            # pending orders back to the pool before anything else moves or
            # gets assigned.
            for vehicle in self.fleet.advance(now, self.vehicles):
                self._handoff_pending_orders(vehicle, now)

    def _drain_subwindow_events(self, window_start: float,
                                window_end: float) -> None:
        """Continuous mode: replay the event clock across one window.

        Events at or before ``window_start`` are discarded — the boundary
        advance just recomputed the complete controller state there.  Every
        remaining epoch strictly before ``window_end`` splits the window:
        vehicles advance to the epoch (their metered walks stop there, mid-
        journey), the epoch's sources apply, and movement resumes under the
        updated network/fleet state.  Events at ``window_end`` belong to the
        next boundary.
        """
        clock = self._clock
        assert clock is not None
        clock.discard_through(window_start)
        for epoch, events in clock.pop_groups(window_end):
            self._advance_all_vehicles(epoch)
            self._apply_controllers(epoch, sources={e.source for e in events})

    # ------------------------------------------------------------------ #
    # window mechanics
    # ------------------------------------------------------------------ #
    def _ingest_orders(self, until: float) -> None:
        """Move orders placed before ``until`` from the stream into the pool.

        On the vectorised path the shortest delivery times of all orders
        arriving this window are prefetched through one paired distance
        kernel call (bit-equal to the per-order point queries) before the
        per-order bookkeeping loop runs against the warm memo.
        """
        arrived: list[Order] = []
        while self._next_order is not None and self._next_order.placed_at < until:
            arrived.append(self._next_order)
            self._consumed_orders += 1
            self._next_order = next(self._order_iter, None)
        if self._external and self._external[0][0] < until:
            # Externally submitted orders (service mode) pop in global
            # (placed_at, order_id) order; merging with any scenario-stream
            # arrivals restores the canonical total order.
            while self._external and self._external[0][0] < until:
                arrived.append(heapq.heappop(self._external)[2])
            arrived.sort(key=lambda o: (o.placed_at, o.order_id))
        self._ingested_until = max(self._ingested_until, until)
        if not arrived:
            return
        if self.config.vectorized:
            self.cost_model.prefetch_sdt(arrived)
        for order in arrived:
            self._pool[order.order_id] = order
            self._outcomes[order.order_id] = OrderOutcome(
                order=order, sdt=self.cost_model.sdt(order))

    def _reject_stale_orders(self, now: float, final: bool = False) -> None:
        """Reject pool orders that have waited longer than the timeout.

        At the end of the simulation (``final=True``) every still-unassigned
        or undelivered-and-unpicked order is rejected so the objective
        accounts for it.
        """
        timeout = self.config.rejection_timeout
        stale = []
        for oid, order in self._pool.items():
            outcome = self._outcomes[oid]
            if final:
                stale.append(oid)
            elif not outcome.ever_assigned and (now - order.placed_at) > timeout:
                # Only never-assigned orders are rejected by the 30-minute
                # rule; a reshuffled order was serviceable when released.
                stale.append(oid)
        for oid in stale:
            del self._pool[oid]
            self._outcomes[oid].rejected = True

    def _release_unpicked_orders(self, now: float) -> None:
        """Reshuffling (Sec. IV-D2): un-assign orders not yet picked up."""
        for vehicle in self.vehicles:
            if not vehicle.pending_orders():
                continue
            released = vehicle.unassign_pending()
            if not released:
                continue
            for order in released:
                self._pool[order.order_id] = order
                outcome = self._outcomes[order.order_id]
                outcome.reassignments += 1
                outcome.assigned_at = None
                outcome.vehicle_id = None
            # The vehicle keeps only its onboard orders; recompute its plan.
            clock = self._vehicle_clock[vehicle.vehicle_id]
            plan = self.cost_model.plan_for_vehicle(vehicle, (), max(now, clock))
            vehicle.set_route(plan if not plan.is_empty else None)
            if not vehicle.assigned:
                vehicle.state = VehicleState.IDLE

    def _handoff_pending_orders(self, vehicle: Vehicle, now: float) -> None:
        """Forced handoff: a driver logged out holding undelivered orders.

        Orders not yet picked up go back to the unassigned pool (they were
        serviceable when offered, so like reshuffled orders they are not
        subject to the 30-minute rejection rule and re-enter the next
        window's FoodGraph).  Orders already on board stay with the vehicle:
        the engine keeps advancing committed route plans regardless of duty
        status, which is exactly the paper's no-abandonment rule.
        """
        released = vehicle.unassign_pending()
        if not released:
            return
        for order in released:
            self._pool[order.order_id] = order
            outcome = self._outcomes[order.order_id]
            outcome.handoffs += 1
            outcome.reassignments += 1
            outcome.assigned_at = None
            outcome.vehicle_id = None
        clock = self._vehicle_clock[vehicle.vehicle_id]
        plan = self.cost_model.plan_for_vehicle(vehicle, (), max(now, clock))
        vehicle.set_route(plan if not plan.is_empty else None)
        if not vehicle.assigned:
            vehicle.state = VehicleState.OFF_DUTY
        self._window_handoffs += len(released)
        if self.fleet is not None:
            self.fleet.log.handoff_orders += len(released)

    def _on_duty(self, vehicle: Vehicle, now: float) -> bool:
        """Duty status: the fleet controller decides when one is attached."""
        if self.fleet is not None:
            return self.fleet.on_duty(vehicle, now)
        return vehicle.is_on_duty(now)

    def _run_window(self, window_start: float, window_end: float) -> None:
        """Invoke the policy on the current pool and apply its assignments."""
        pool_orders = sorted(self._pool.values(), key=lambda o: (o.placed_at, o.order_id))
        on_duty = [v for v in self.vehicles if self._on_duty(v, window_end)]
        tracer = self._tracer
        # The stopwatch measures in every mode (the disabled tracer hands out
        # a timing-only singleton): decision_seconds is a simulation metric
        # (the overflow figures), not just telemetry.
        with tracer.stopwatch("engine.decide") as decide:
            assignments = self.policy.assign(pool_orders, on_duty, window_end)
        decision_seconds = decide.duration
        # Optionally charge the measured computation time into the simulated
        # clock: assignments made in this window only take effect that much
        # later, which is how slow policies hurt delivery times in the paper
        # (the time(A(o)) term of Eq. 2).
        effective_time = window_end
        if self.config.charge_decision_time:
            effective_time = window_end + decision_seconds
        with tracer.span("engine.apply"):
            assigned_count = self._apply_assignments(assignments, effective_time)
        self._windows.append(WindowRecord(
            start=window_start,
            end=window_end,
            num_orders=len(pool_orders),
            num_vehicles=len(on_duty),
            num_assigned_orders=assigned_count,
            decision_seconds=decision_seconds,
            num_declined_offers=self._window_declines,
            num_handoffs=self._window_handoffs,
        ))

    def _apply_assignments(self, assignments: Sequence[Assignment], now: float) -> int:
        """Commit policy decisions to vehicles and the order pool.

        With a fleet behaviour model attached, every assignment is first
        *offered* to its driver, who may decline (stochastic rejection).
        Declined batches simply stay in the pool — they re-enter the next
        window's FoodGraph and every decline is counted on the order — so
        rejection never drops an order silently.
        """
        assigned = 0
        if self.fleet is not None and assignments:
            assignments, declined = self.fleet.screen_offers(assignments, now)
            for assignment in declined:
                for order in assignment.orders:
                    outcome = self._outcomes.get(order.order_id)
                    if outcome is not None:
                        outcome.offer_rejections += 1
            self._window_declines += len(declined)
        for assignment in assignments:
            vehicle = assignment.vehicle
            fresh = [order for order in assignment.orders if order.order_id in self._pool]
            if not fresh:
                continue
            if not vehicle.can_accept(fresh):
                # Defensive: a buggy policy overloading a vehicle is ignored
                # rather than corrupting the simulation.
                continue
            vehicle.assign(fresh, assignment.plan)
            # A vehicle cannot act on an assignment before the assignment
            # exists; when decision time is charged, `now` lies past the
            # window boundary and the vehicle's clock is pushed accordingly.
            clock = self._vehicle_clock[vehicle.vehicle_id]
            self._vehicle_clock[vehicle.vehicle_id] = max(clock, now)
            for order in fresh:
                del self._pool[order.order_id]
                outcome = self._outcomes[order.order_id]
                outcome.assigned_at = now
                outcome.vehicle_id = vehicle.vehicle_id
                outcome.ever_assigned = True
                assigned += 1
        return assigned

    # ------------------------------------------------------------------ #
    # vehicle movement
    # ------------------------------------------------------------------ #
    def _advance_all_vehicles(self, until: float) -> None:
        for vehicle in self.vehicles:
            self._advance_vehicle(vehicle, until)

    def _advance_vehicle(self, vehicle: Vehicle, until: float) -> None:
        """Move one vehicle along its remaining stops up to time ``until``.

        Edges are traversed atomically: an edge whose traversal starts before
        ``until`` is completed even if it finishes slightly after, which keeps
        vehicles on nodes without losing residual window time.
        """
        clock = self._vehicle_clock[vehicle.vehicle_id]
        while vehicle.stop_queue and clock < until:
            stop = vehicle.stop_queue[0]
            if vehicle.node != stop.node:
                clock = self._walk_toward(vehicle, stop.node, clock, until)
                if vehicle.node != stop.node:
                    break
            # The vehicle is at the stop's node: process the stop.
            order = stop.order
            if stop.is_pickup:
                if order.order_id not in vehicle.assigned:
                    # The order was reshuffled away; drop the stale stop.
                    vehicle.stop_queue.pop(0)
                    continue
                ready = order.ready_at
                if self.fleet is not None:
                    # Kitchens run late: the behaviour model's sampled delay
                    # holds the vehicle at the restaurant past nominal prep.
                    ready += self.fleet.prep_delay(order)
                if clock < ready:
                    wait = ready - clock
                    vehicle.waiting_seconds += wait
                    outcome = self._outcomes.get(order.order_id)
                    if outcome is not None:
                        outcome.wait_seconds += wait
                    clock = ready
                vehicle.mark_picked_up(order.order_id)
                outcome = self._outcomes.get(order.order_id)
                if outcome is not None:
                    outcome.picked_up_at = clock
            else:
                if order.order_id in vehicle.assigned:
                    outcome = self._outcomes.get(order.order_id)
                    if outcome is not None:
                        outcome.delivered_at = clock
                    vehicle.mark_delivered(order.order_id)
            if vehicle.stop_queue:
                vehicle.stop_queue.pop(0)
        if not vehicle.stop_queue and vehicle.reposition_node is not None \
                and clock < until:
            # Idle repositioning: drift toward the fleet controller's target.
            # The walk is metered exactly like delivery movement (edge-atomic
            # legs at load 0) and any new assignment pre-empts it.
            clock = self._walk_toward(vehicle, vehicle.reposition_node, clock, until)
            if vehicle.node == vehicle.reposition_node:
                vehicle.reposition_node = None
        if not vehicle.stop_queue and clock < until:
            clock = until
        self._vehicle_clock[vehicle.vehicle_id] = clock

    def _walk_toward(self, vehicle: Vehicle, dest: int, clock: float,
                     until: float) -> float:
        """Walk a vehicle along the quickest path toward ``dest``.

        Edges are traversed atomically (an edge entered before ``until`` is
        completed even if it finishes slightly after); returns the updated
        vehicle clock.  The vehicle may end anywhere along the path when the
        window runs out.

        When ``dest`` is unreachable — a severed closure cut the vehicle off
        — the vehicle waits in place: the clock advances to ``until``
        without movement, and the walk is retried at the next epoch (the
        closure's end is itself an event, so the wait ends exactly when the
        road reopens in continuous mode, or at the following window boundary
        in window mode).

        The vectorised kernel (:class:`~repro.sim.advance.PathWalker`)
        meters the same edges with array cumulative sums and is bit-identical
        to the scalar reference below, which the property tests keep honest.
        """
        if self._walker is not None:
            return self._walker.walk(vehicle, dest, clock, until)
        return self._walk_toward_reference(vehicle, dest, clock, until)

    def _walk_toward_reference(self, vehicle: Vehicle, dest: int, clock: float,
                               until: float) -> float:
        """Scalar per-edge reference implementation of :meth:`_walk_toward`."""
        network = self.cost_model.oracle.network
        path = self.cost_model.oracle.path_or_none(vehicle.node, dest, clock)
        if path is None:
            # Severed off: wait in place for the road to reopen.
            return until
        for u, v in zip(path, path[1:], strict=False):
            if clock >= until:
                break
            travel = network.edge_time(u, v, clock)
            km = haversine_distance(network.coord(u), network.coord(v))
            vehicle.record_leg(km)
            clock += travel
            vehicle.node = v
        return clock

    def _drain(self, deadline: float) -> None:
        """Let vehicles finish their remaining route plans after the last window."""
        self._advance_all_vehicles(deadline)


def simulate(scenario: Scenario, policy: AssignmentPolicy, cost_model: CostModel,
             config: SimulationConfig | None = None,
             traffic: TrafficController | None = None,
             fleet: FleetController | None = None,
             resilience=None) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it.

    ``traffic`` / ``fleet`` may supply explicit controllers; by default the
    scenario's own traffic timeline and fleet plan (if any) are attached
    automatically.  ``resilience`` optionally attaches a
    :class:`repro.resilience.ResilienceManager` (backend ladders, latency-
    budget degradation, fault injection).
    """
    return Simulator(scenario, policy, cost_model, config, traffic=traffic,
                     fleet=fleet, resilience=resilience).run()


__all__ = ["EVENT_RESOLUTIONS", "ORDER_SOURCES", "SimulationConfig",
           "Simulator", "simulate"]
