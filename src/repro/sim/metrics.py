"""Per-order / per-window records and the evaluation metrics built on them.

The metrics match Sec. V-B of the paper:

* **XDT** — extra delivery time, the objective of Problem 1, reported in
  hours per simulated day;
* **O/Km** — orders delivered per kilometre driven,
  ``sum_k k * D_k / sum_k D_k`` where ``D_k`` is the distance driven while
  carrying exactly ``k`` orders;
* **WT** — total vehicle waiting time at restaurants, in hours per day;
* **rejection rate** — fraction of orders rejected after waiting 30 minutes
  unassigned;
* **overflown windows** — fraction of accumulation windows whose assignment
  computation took longer than Δ (the real-time feasibility criterion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.network.graph import time_slot
from repro.obs.telemetry import Telemetry
from repro.orders.order import Order
from repro.orders.vehicle import Vehicle


@dataclass
class OrderOutcome:
    """Everything that happened to one order during the simulation."""

    order: Order
    sdt: float
    assigned_at: float | None = None
    picked_up_at: float | None = None
    delivered_at: float | None = None
    rejected: bool = False
    vehicle_id: int | None = None
    reassignments: int = 0
    #: seconds the serving vehicle waited at the restaurant for this order
    wait_seconds: float = 0.0
    #: times a driver declined an offer containing this order (the batch then
    #: re-entered the next accumulation window's pool — the re-offer cascade)
    offer_rejections: int = 0
    #: times the order was handed back to the pool because its assigned
    #: driver logged out before picking it up (forced handoff)
    handoffs: int = 0
    #: whether the order was ever assigned to a vehicle (reshuffling may
    #: release it again, but a once-assigned order is considered serviceable
    #: and is not subject to the 30-minute rejection rule)
    ever_assigned: bool = False

    @property
    def delivered(self) -> bool:
        return self.delivered_at is not None

    @property
    def delivery_duration(self) -> float | None:
        """Seconds between order placement and drop-off."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.order.placed_at

    @property
    def xdt(self) -> float | None:
        """Extra delivery time (Def. 7) of a delivered order, else ``None``."""
        duration = self.delivery_duration
        if duration is None:
            return None
        return max(0.0, duration - self.sdt)


@dataclass
class WindowRecord:
    """One accumulation window's bookkeeping."""

    start: float
    end: float
    num_orders: int
    num_vehicles: int
    num_assigned_orders: int
    decision_seconds: float
    #: offers declined by drivers in this window (fleet behaviour model)
    num_declined_offers: int = 0
    #: orders re-queued in this window because their driver logged out
    num_handoffs: int = 0

    @property
    def slot(self) -> int:
        """The 1-hour timeslot this window falls into."""
        return time_slot(self.start)

    @property
    def overflown(self) -> bool:
        """Whether the assignment computation exceeded the window length."""
        return self.decision_seconds > (self.end - self.start)

    def overflown_within(self, budget: float) -> bool:
        """Whether the assignment computation exceeded an explicit budget.

        Scaled-down workloads cannot meaningfully overflow the paper's
        3-minute budget, so the scalability experiments compare policies
        against a proportionally reduced real-time budget instead.
        """
        return self.decision_seconds > budget


@dataclass
class SimulationResult:
    """Aggregated outcome of one simulated day under one policy."""

    policy_name: str
    city_name: str
    delta: float
    outcomes: dict[int, OrderOutcome] = field(default_factory=dict)
    windows: list[WindowRecord] = field(default_factory=list)
    vehicles: list[Vehicle] = field(default_factory=list)
    omega: float = 7200.0
    simulated_seconds: float = 86400.0
    #: per-cache hit/miss/size/capacity counters of the distance oracle's
    #: LRU caches, measured over this run only (the engine snapshots the
    #: counters at start and stores the deltas) — see
    #: :meth:`DistanceOracle.cache_info
    #: <repro.network.distance_oracle.DistanceOracle.cache_info>`
    cache_stats: dict[str, dict[str, int]] = field(default_factory=dict)
    #: per-phase latency profile, span records and folded counters captured
    #: when observability is enabled (``--obs summary|trace``); ``None`` on
    #: default runs — see :class:`repro.obs.telemetry.Telemetry`
    telemetry: Telemetry | None = None
    #: backend-ladder / degradation-controller / fault-injector snapshot when
    #: a resilience manager was attached (``--matching-backend``,
    #: ``--latency-budget``, ``--faults``); ``None`` on default runs.  Like
    #: ``telemetry`` and ``cache_stats``, never part of the fingerprint.
    resilience: dict | None = None

    # ------------------------------------------------------------------ #
    # order-level metrics
    # ------------------------------------------------------------------ #
    @property
    def num_orders(self) -> int:
        return len(self.outcomes)

    @property
    def delivered_orders(self) -> list[OrderOutcome]:
        return [o for o in self.outcomes.values() if o.delivered]

    @property
    def rejected_orders(self) -> list[OrderOutcome]:
        return [o for o in self.outcomes.values() if o.rejected]

    @property
    def rejection_rate(self) -> float:
        """Fraction of orders rejected (Fig. 7(e), Fig. 9(d))."""
        if not self.outcomes:
            return 0.0
        return len(self.rejected_orders) / len(self.outcomes)

    def total_xdt_seconds(self, include_rejection_penalty: bool = False) -> float:
        """Total extra delivery time across delivered orders, in seconds.

        With ``include_rejection_penalty`` the objective of Problem 1 is
        returned instead (each rejection contributes Ω).
        """
        total = sum(o.xdt or 0.0 for o in self.delivered_orders)
        if include_rejection_penalty:
            total += self.omega * len(self.rejected_orders)
        return total

    def xdt_hours_per_day(self, include_rejection_penalty: bool = False) -> float:
        """XDT scaled to hours per 24-hour day (the unit of Figs. 6-9)."""
        seconds = self.total_xdt_seconds(include_rejection_penalty)
        if self.simulated_seconds <= 0:
            return 0.0
        scale = 86400.0 / self.simulated_seconds
        return seconds * scale / 3600.0

    def mean_xdt_seconds(self) -> float:
        delivered = self.delivered_orders
        if not delivered:
            return 0.0
        return sum(o.xdt or 0.0 for o in delivered) / len(delivered)

    def mean_delivery_minutes(self) -> float:
        delivered = self.delivered_orders
        if not delivered:
            return 0.0
        return sum(o.delivery_duration or 0.0 for o in delivered) / len(delivered) / 60.0

    # ------------------------------------------------------------------ #
    # vehicle-level metrics
    # ------------------------------------------------------------------ #
    def orders_per_km(self) -> float:
        """Average orders carried per kilometre driven (Sec. V-B, O/Km)."""
        total_km = 0.0
        weighted = 0.0
        for vehicle in self.vehicles:
            for load, km in vehicle.km_by_load.items():
                total_km += km
                weighted += load * km
        if total_km <= 0:
            return 0.0
        return weighted / total_km

    def total_distance_km(self) -> float:
        return sum(vehicle.distance_travelled_km for vehicle in self.vehicles)

    def waiting_hours_per_day(self) -> float:
        """Total vehicle waiting time at restaurants, scaled to hours/day."""
        seconds = sum(vehicle.waiting_seconds for vehicle in self.vehicles)
        if self.simulated_seconds <= 0:
            return 0.0
        scale = 86400.0 / self.simulated_seconds
        return seconds * scale / 3600.0

    # ------------------------------------------------------------------ #
    # window-level metrics (scalability)
    # ------------------------------------------------------------------ #
    def overflow_percentage(self, slots: Iterable[int] | None = None,
                            budget: float | None = None) -> float:
        """Percentage of accumulation windows whose decision time exceeded Δ.

        ``slots`` restricts the computation to specific 1-hour timeslots
        (the peak-slot variant of Fig. 6(g)).  ``budget`` replaces Δ as the
        real-time budget; the scaled-down scalability experiments use a
        proportionally reduced budget since a laptop-sized workload can never
        overflow the paper's 3-minute window in absolute terms.
        """
        windows = self.windows
        if slots is not None:
            wanted = set(slots)
            windows = [w for w in windows if w.slot in wanted]
        if not windows:
            return 0.0
        if budget is None:
            overflown = sum(1 for w in windows if w.overflown)
        else:
            overflown = sum(1 for w in windows if w.overflown_within(budget))
        return 100.0 * overflown / len(windows)

    def total_declined_offers(self) -> int:
        """Offers declined by drivers over the whole run (fleet behaviour)."""
        return sum(w.num_declined_offers for w in self.windows)

    def total_handoffs(self) -> int:
        """Orders re-queued because their driver logged out mid-assignment."""
        return sum(w.num_handoffs for w in self.windows)

    def mean_decision_seconds(self) -> float:
        if not self.windows:
            return 0.0
        return sum(w.decision_seconds for w in self.windows) / len(self.windows)

    def total_decision_seconds(self) -> float:
        return sum(w.decision_seconds for w in self.windows)

    # ------------------------------------------------------------------ #
    # per-timeslot breakdowns (Figs. 6(i)-(k))
    # ------------------------------------------------------------------ #
    def xdt_by_slot(self) -> dict[int, float]:
        """Total XDT (seconds) of delivered orders grouped by placement slot."""
        result: dict[int, float] = {}
        for outcome in self.delivered_orders:
            slot = time_slot(outcome.order.placed_at)
            result[slot] = result.get(slot, 0.0) + (outcome.xdt or 0.0)
        return result

    def waiting_by_slot(self) -> dict[int, float]:
        """Vehicle waiting time (seconds) attributed to the pickup's slot."""
        result: dict[int, float] = {}
        for outcome in self.delivered_orders:
            if outcome.picked_up_at is None:
                continue
            slot = time_slot(outcome.picked_up_at)
            result[slot] = result.get(slot, 0.0) + outcome.wait_seconds
        return result

    # ------------------------------------------------------------------ #
    def total_cache_hits(self) -> int:
        """Distance-cache hits recorded during this run (all caches)."""
        return sum(stats.get("hits", 0) for stats in self.cache_stats.values())

    def total_cache_misses(self) -> int:
        """Distance-cache misses recorded during this run (all caches)."""
        return sum(stats.get("misses", 0) for stats in self.cache_stats.values())

    def cache_hit_rate(self) -> float:
        """Overall hit fraction of the oracle's LRU caches for this run."""
        hits = self.total_cache_hits()
        lookups = hits + self.total_cache_misses()
        if lookups == 0:
            return 0.0
        return hits / lookups

    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, float]:
        """Flat metric dictionary used by the experiment reports."""
        return {
            "orders": float(self.num_orders),
            "delivered": float(len(self.delivered_orders)),
            "rejected": float(len(self.rejected_orders)),
            "rejection_rate": self.rejection_rate,
            "xdt_hours_per_day": self.xdt_hours_per_day(),
            "objective_hours_per_day": self.xdt_hours_per_day(include_rejection_penalty=True),
            "mean_xdt_seconds": self.mean_xdt_seconds(),
            "mean_delivery_minutes": self.mean_delivery_minutes(),
            "orders_per_km": self.orders_per_km(),
            "waiting_hours_per_day": self.waiting_hours_per_day(),
            "overflow_pct": self.overflow_percentage(),
            "mean_decision_seconds": self.mean_decision_seconds(),
            "total_distance_km": self.total_distance_km(),
            "driver_declines": float(self.total_declined_offers()),
            "fleet_handoffs": float(self.total_handoffs()),
            "cache_hits": float(self.total_cache_hits()),
            "cache_misses": float(self.total_cache_misses()),
            "cache_hit_rate": self.cache_hit_rate(),
        }


__all__ = ["OrderOutcome", "WindowRecord", "SimulationResult"]
