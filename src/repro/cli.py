"""Command-line interface for the FoodMatch reproduction.

Three subcommands cover the common workflows without writing any Python:

``python -m repro simulate``
    Run one policy on one city profile and print (optionally save) the
    evaluation metrics.
``python -m repro compare``
    Run several policies on the same workload and print a comparison table.
``python -m repro figure``
    Regenerate one of the paper's tables/figures by name and print its data.

Examples::

    python -m repro simulate --city CityA --policy foodmatch --scale 0.3 \
        --start-hour 12 --end-hour 13 --traffic heavy --fleet full \
        --event-resolution continuous
    python -m repro compare --city CityB --policies foodmatch greedy km \
        --scale 0.1 --vehicle-fraction 0.4 --jobs 4
    python -m repro figure --name fig8abc_eta_sweep --jobs 4

``--jobs N`` fans the independent cells of a comparison / figure / sweep
out across N worker processes (see :mod:`repro.experiments.executor`); the
output is bit-identical to the serial default.
"""

from __future__ import annotations

import argparse
import math
import sys
from collections.abc import Sequence

from repro import obs
from repro.experiments import figures
from repro.experiments.executor import set_default_jobs
from repro.experiments.reporting import (
    format_cache_report,
    format_metric_comparison,
    format_telemetry_report,
    format_trace_rollup,
)
from repro.experiments.runner import (
    ExperimentSetting,
    PolicySpec,
    available_policies,
    run_policy_comparison,
    run_setting,
)
from repro.obs.trace import merge_traces, rollup, write_trace_jsonl
from repro.sim.engine import EVENT_RESOLUTIONS
from repro.workload.city import CITY_PROFILES
from repro.workload.generator import FLEET_MODES, TRAFFIC_INTENSITIES

_FIGURE_FUNCTIONS = {
    "table2": figures.table2_dataset_summary,
    "fig4a_percentile_ranks": figures.fig4a_percentile_ranks,
    "fig6a_order_vehicle_ratio": figures.fig6a_order_vehicle_ratio,
    "fig6b_vs_reyes": figures.fig6b_vs_reyes,
    "fig6cde_vs_greedy": figures.fig6cde_vs_greedy,
    "fig6fgh_scalability": figures.fig6fgh_scalability,
    "fig6h_single_window_scaling": figures.fig6h_single_window_scaling,
    "fig6ijk_improvement_by_slot": figures.fig6ijk_improvement_by_slot,
    "fig7a_ablation": figures.fig7a_ablation,
    "fig7bcde_vehicle_sweep": figures.fig7bcde_vehicle_sweep,
    "fig8abc_eta_sweep": figures.fig8abc_eta_sweep,
    "fig8defg_delta_sweep": figures.fig8defg_delta_sweep,
    "fig8hijk_k_sweep": figures.fig8hijk_k_sweep,
    "fig9_gamma_sweep": figures.fig9_gamma_sweep,
    "traffic_robustness": figures.traffic_robustness,
    "event_density": figures.event_density,
    "fleet_robustness": figures.fleet_robustness,
}

_COMPARE_METRICS = ("xdt_hours_per_day", "orders_per_km", "waiting_hours_per_day",
                    "rejection_rate", "mean_decision_seconds", "overflow_pct")


def _traffic_level(text: str):
    """Parse ``--traffic``: a named intensity or a numeric event density."""
    if text in TRAFFIC_INTENSITIES:
        return text
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected one of {sorted(TRAFFIC_INTENSITIES)} or a numeric "
            f"events-per-hour density, got {text!r}") from None
    if not math.isfinite(value) or value < 0:
        raise argparse.ArgumentTypeError(
            "event density must be a finite non-negative number")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FoodMatch reproduction: simulate food-delivery assignment policies.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_jobs_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for experiment cells (policies, "
                              "sweep values, folds); 1 = serial, parallel output "
                              "is bit-identical (default: 1)")
        sub.add_argument("--log-level", default=None, metavar="LEVEL",
                         help="enable structured logging on the 'repro' logger "
                              "at this level (debug, info, warning, ...); "
                              "silent by default")

    def add_obs_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--obs", choices=list(obs.OBS_MODES), default="off",
                         help="observability: 'summary' aggregates per-phase "
                              "latency histograms (p50/p99), 'trace' also keeps "
                              "the full span tree for --trace-out; 'off' "
                              "(default) is the zero-overhead no-op path")
        sub.add_argument("--trace-out", default=None, metavar="PATH",
                         help="write the span tree as trace JSONL (one event "
                              "per line); requires --obs trace")

    def add_setting_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--city", choices=sorted(CITY_PROFILES), default="CityA",
                         help="city profile to simulate (default: CityA)")
        sub.add_argument("--scale", type=float, default=0.2,
                         help="workload scale factor (default: 0.2)")
        sub.add_argument("--start-hour", type=int, default=12,
                         help="first simulated hour (default: 12)")
        sub.add_argument("--end-hour", type=int, default=13,
                         help="end of the simulated horizon (default: 13)")
        sub.add_argument("--delta", type=float, default=None,
                         help="accumulation window in seconds (default: city profile)")
        sub.add_argument("--vehicle-fraction", type=float, default=1.0,
                         help="fraction of the fleet made available (default: 1.0)")
        sub.add_argument("--seed", type=int, default=0, help="workload seed (default: 0)")
        sub.add_argument("--traffic", type=_traffic_level, default="none",
                         metavar="LEVEL",
                         help="dynamic-traffic intensity: incidents, closures and "
                              "zonal slowdowns replayed during the simulation — "
                              f"one of {sorted(TRAFFIC_INTENSITIES)} ('severe' "
                              "fully severs half its closures) or a numeric "
                              "events-per-hour density (default: none)")
        sub.add_argument("--event-resolution", choices=list(EVENT_RESOLUTIONS),
                         default="window",
                         help="when traffic/fleet events take effect: 'window' "
                              "quantizes them to accumulation-window boundaries, "
                              "'continuous' applies them at their exact "
                              "timestamps via the event clock (default: window)")
        sub.add_argument("--fleet", choices=list(FLEET_MODES), default="none",
                         help="driver-lifecycle realism: 'shifts' adds "
                              "login/logout/break schedules, 'full' adds surge "
                              "onboarding, zonal drains, stochastic offer "
                              "rejection, kitchen delays and idle repositioning "
                              "(default: none)")

    simulate = subparsers.add_parser("simulate", help="run one policy on one city")
    add_setting_arguments(simulate)
    add_jobs_argument(simulate)
    add_obs_arguments(simulate)
    simulate.add_argument("--policy", choices=available_policies(), default="foodmatch")
    simulate.add_argument("--save-json", default=None, metavar="PATH",
                          help="write the full result (summary + per-order records) as JSON")
    simulate.add_argument("--save-csv", default=None, metavar="PATH",
                          help="write the per-order records as CSV")

    compare = subparsers.add_parser("compare", help="run several policies on one workload")
    add_setting_arguments(compare)
    add_jobs_argument(compare)
    add_obs_arguments(compare)
    compare.add_argument("--policies", nargs="+", choices=available_policies(),
                         default=["foodmatch", "greedy", "km"])

    figure = subparsers.add_parser("figure", help="regenerate one table/figure of the paper")
    add_jobs_argument(figure)
    figure.add_argument("--name", choices=sorted(_FIGURE_FUNCTIONS), required=True)
    figure.add_argument("--list", action="store_true", help="list available figures and exit")

    return parser


def _setting_from_args(args: argparse.Namespace) -> ExperimentSetting:
    return ExperimentSetting(
        profile=CITY_PROFILES[args.city],
        scale=args.scale,
        start_hour=args.start_hour,
        end_hour=args.end_hour,
        delta=args.delta,
        vehicle_fraction=args.vehicle_fraction,
        seed=args.seed,
        traffic=args.traffic,
        fleet=args.fleet,
        event_resolution=args.event_resolution,
    )


def _command_simulate(args: argparse.Namespace) -> int:
    setting = _setting_from_args(args)
    result = run_setting(setting, PolicySpec.of(args.policy))
    print(f"{args.policy} on {args.city} "
          f"({args.start_hour}:00-{args.end_hour}:00, scale {args.scale})")
    for key, value in result.summary().items():
        print(f"  {key:<26} {value:.4f}")
    if result.cache_stats:
        print(format_cache_report(result.cache_stats))
    if result.telemetry is not None:
        print(format_telemetry_report(result.telemetry))
    if args.trace_out:
        telemetry = result.telemetry
        count = write_trace_jsonl(args.trace_out, telemetry.spans,
                                  header=telemetry.header())
        print(f"wrote trace JSONL ({count} events) to {args.trace_out}")
    if args.save_json:
        from repro.workload.io import save_result_json

        save_result_json(result, args.save_json)
        print(f"wrote JSON result to {args.save_json}")
    if args.save_csv:
        from repro.workload.io import save_result_csv

        save_result_csv(result, args.save_csv)
        print(f"wrote per-order CSV to {args.save_csv}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    setting = _setting_from_args(args)
    specs = [PolicySpec.of(name) for name in args.policies]
    results = run_policy_comparison(setting, specs)
    summaries = {name: result.summary() for name, result in results.items()}
    print(format_metric_comparison(
        summaries, _COMPARE_METRICS,
        title=f"Policy comparison on {args.city} "
              f"({args.start_hour}:00-{args.end_hour}:00, scale {args.scale})"))
    telemetries = [result.telemetry for result in results.values()
                   if result.telemetry is not None]
    for telemetry in telemetries:
        print(format_telemetry_report(telemetry))
    if args.trace_out or any(t.spans for t in telemetries):
        # One campaign trace: every policy run is a cell, spans stamped with
        # their cell index (exactly what the executor's merge produces).
        merged = merge_traces([t.spans for t in telemetries],
                              cells=[t.header() for t in telemetries])
        if merged:
            print(format_trace_rollup(rollup(merged),
                                      title="campaign trace rollup (self time)"))
        if args.trace_out:
            count = write_trace_jsonl(args.trace_out, merged,
                                      header={"campaign": args.city,
                                              "cells": len(telemetries)})
            print(f"wrote trace JSONL ({count} events) to {args.trace_out}")
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    result = _FIGURE_FUNCTIONS[args.name]()
    print(f"[{result.figure_id}] {result.description}")
    print(result.text)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    set_default_jobs(args.jobs)
    if args.log_level is not None:
        try:
            obs.configure_logging(args.log_level)
        except ValueError as exc:
            parser.error(str(exc))
    obs_mode = getattr(args, "obs", "off")
    if getattr(args, "trace_out", None) and obs_mode != "trace":
        parser.error("--trace-out requires --obs trace")
    obs.set_mode(obs_mode)
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "figure":
        return _command_figure(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
