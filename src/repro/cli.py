"""Command-line interface for the FoodMatch reproduction.

Five subcommands cover the common workflows without writing any Python:

``python -m repro simulate``
    Run one policy on one city profile and print (optionally save) the
    evaluation metrics.
``python -m repro compare``
    Run several policies on the same workload and print a comparison table.
``python -m repro figure``
    Regenerate one of the paper's tables/figures by name and print its data.
``python -m repro serve``
    Host one city's dispatch engine as an always-on asyncio service
    (:mod:`repro.service`): deterministic simulated-clock replay or
    wall-clock pacing, with checkpoint (``--checkpoint-out``) and resume
    (``--restore``).
``python -m repro loadgen``
    Drive a simulated-clock service over the recorded order stream as fast
    as possible and report sustained orders/sec, decide p50/p99 and the
    backpressure counters.

Examples::

    python -m repro simulate --city CityA --policy foodmatch --scale 0.3 \
        --start-hour 12 --end-hour 13 --traffic heavy --fleet full \
        --event-resolution continuous
    python -m repro compare --city CityB --policies foodmatch greedy km \
        --scale 0.1 --vehicle-fraction 0.4 --jobs 4
    python -m repro figure --name fig8abc_eta_sweep --jobs 4
    python -m repro serve --city CityA --scale 0.1 --stop-after-windows 4 \
        --checkpoint-out /tmp/ckpt.json
    python -m repro serve --restore /tmp/ckpt.json
    python -m repro loadgen --city CityA --scale 0.1 --json /tmp/load.json

``--jobs N`` fans the independent cells of a comparison / figure / sweep
out across N worker processes (see :mod:`repro.experiments.executor`); the
output is bit-identical to the serial default.

``simulate``, ``compare``, ``serve`` and ``loadgen`` convert SIGINT/SIGTERM
into a clean shutdown: a one-line summary on stderr, any ``--trace-out``
file flushed as valid (header-only) trace JSONL, exit code ``128+signum``.
"""

from __future__ import annotations

import argparse
import math
import sys
from collections.abc import Sequence

from repro import obs
from repro.experiments import figures
from repro.network import kernels
from repro.experiments.executor import set_default_jobs
from repro.experiments.reporting import (
    format_cache_report,
    format_metric_comparison,
    format_telemetry_report,
    format_trace_rollup,
)
from repro.experiments.runner import (
    ExperimentSetting,
    PolicySpec,
    available_policies,
    run_policy_comparison,
    run_setting,
)
from repro.core.matching import MATCHING_RUNGS
from repro.network.approx_paths import PATH_RUNGS
from repro.obs.trace import merge_traces, rollup, write_trace_jsonl
from repro.sim.engine import EVENT_RESOLUTIONS
from repro.workload.city import CITY_PROFILES
from repro.workload.generator import FLEET_MODES, TRAFFIC_INTENSITIES

_FIGURE_FUNCTIONS = {
    "table2": figures.table2_dataset_summary,
    "fig4a_percentile_ranks": figures.fig4a_percentile_ranks,
    "fig6a_order_vehicle_ratio": figures.fig6a_order_vehicle_ratio,
    "fig6b_vs_reyes": figures.fig6b_vs_reyes,
    "fig6cde_vs_greedy": figures.fig6cde_vs_greedy,
    "fig6fgh_scalability": figures.fig6fgh_scalability,
    "fig6h_single_window_scaling": figures.fig6h_single_window_scaling,
    "fig6ijk_improvement_by_slot": figures.fig6ijk_improvement_by_slot,
    "fig7a_ablation": figures.fig7a_ablation,
    "fig7bcde_vehicle_sweep": figures.fig7bcde_vehicle_sweep,
    "fig8abc_eta_sweep": figures.fig8abc_eta_sweep,
    "fig8defg_delta_sweep": figures.fig8defg_delta_sweep,
    "fig8hijk_k_sweep": figures.fig8hijk_k_sweep,
    "fig9_gamma_sweep": figures.fig9_gamma_sweep,
    "traffic_robustness": figures.traffic_robustness,
    "event_density": figures.event_density,
    "fleet_robustness": figures.fleet_robustness,
    "degradation_ladder": figures.degradation_ladder,
}

_COMPARE_METRICS = ("xdt_hours_per_day", "orders_per_km", "waiting_hours_per_day",
                    "rejection_rate", "mean_decision_seconds", "overflow_pct")

#: Subcommands that trade the default KeyboardInterrupt for a clean shutdown.
_SIGNAL_COMMANDS = frozenset({"simulate", "compare", "serve", "loadgen"})


class GracefulExit(Exception):
    """Raised by the SIGINT/SIGTERM handler to unwind the command cleanly."""

    def __init__(self, signum: int) -> None:
        super().__init__(signum)
        self.signum = signum


def _install_signal_handlers() -> None:
    import signal

    def _handler(signum: int, frame: object) -> None:
        raise GracefulExit(signum)

    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, _handler)


def _graceful_exit(args: argparse.Namespace, exc: GracefulExit) -> int:
    """Shut the interrupted command down: flush traces, summarise, exit nonzero."""
    import signal

    name = signal.Signals(exc.signum).name
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        try:
            count = write_trace_jsonl(
                trace_out, [],
                header={"command": args.command, "interrupted_by": name})
            print(f"flushed trace JSONL ({count} events) to {trace_out}",
                  file=sys.stderr)
        except OSError as io_exc:
            print(f"could not flush trace JSONL to {trace_out}: {io_exc}",
                  file=sys.stderr)
    print(f"repro {args.command}: interrupted by {name}; "
          "stopped cleanly before completion", file=sys.stderr)
    return 128 + int(exc.signum)


def _traffic_level(text: str):
    """Parse ``--traffic``: a named intensity or a numeric event density."""
    if text in TRAFFIC_INTENSITIES:
        return text
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected one of {sorted(TRAFFIC_INTENSITIES)} or a numeric "
            f"events-per-hour density, got {text!r}") from None
    if not math.isfinite(value) or value < 0:
        raise argparse.ArgumentTypeError(
            "event density must be a finite non-negative number")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FoodMatch reproduction: simulate food-delivery assignment policies.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_jobs_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for experiment cells (policies, "
                              "sweep values, folds); 1 = serial, parallel output "
                              "is bit-identical (default: 1)")
        sub.add_argument("--log-level", default=None, metavar="LEVEL",
                         help="enable structured logging on the 'repro' logger "
                              "at this level (debug, info, warning, ...); "
                              "silent by default")
        sub.add_argument("--kernel-backend", choices=list(kernels.KERNEL_BACKENDS),
                         default=None,
                         help="graph kernel implementation: 'numba' requires "
                              "the compiled tier (pip install .[speed]), "
                              "'python' forces the reference loops, 'auto' "
                              "picks numba when importable (default: auto, "
                              "or the REPRO_KERNEL_BACKEND env var)")

    def add_obs_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--obs", choices=list(obs.OBS_MODES), default="off",
                         help="observability: 'summary' aggregates per-phase "
                              "latency histograms (p50/p99), 'trace' also keeps "
                              "the full span tree for --trace-out; 'off' "
                              "(default) is the zero-overhead no-op path")
        sub.add_argument("--trace-out", default=None, metavar="PATH",
                         help="write the span tree as trace JSONL (one event "
                              "per line); requires --obs trace")

    def add_setting_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--city", choices=sorted(CITY_PROFILES), default="CityA",
                         help="city profile to simulate (default: CityA)")
        sub.add_argument("--scale", type=float, default=0.2,
                         help="workload scale factor (default: 0.2)")
        sub.add_argument("--start-hour", type=int, default=12,
                         help="first simulated hour (default: 12)")
        sub.add_argument("--end-hour", type=int, default=13,
                         help="end of the simulated horizon (default: 13)")
        sub.add_argument("--delta", type=float, default=None,
                         help="accumulation window in seconds (default: city profile)")
        sub.add_argument("--vehicle-fraction", type=float, default=1.0,
                         help="fraction of the fleet made available (default: 1.0)")
        sub.add_argument("--seed", type=int, default=0, help="workload seed (default: 0)")
        sub.add_argument("--traffic", type=_traffic_level, default="none",
                         metavar="LEVEL",
                         help="dynamic-traffic intensity: incidents, closures and "
                              "zonal slowdowns replayed during the simulation — "
                              f"one of {sorted(TRAFFIC_INTENSITIES)} ('severe' "
                              "fully severs half its closures) or a numeric "
                              "events-per-hour density (default: none)")
        sub.add_argument("--event-resolution", choices=list(EVENT_RESOLUTIONS),
                         default="window",
                         help="when traffic/fleet events take effect: 'window' "
                              "quantizes them to accumulation-window boundaries, "
                              "'continuous' applies them at their exact "
                              "timestamps via the event clock (default: window)")
        sub.add_argument("--fleet", choices=list(FLEET_MODES), default="none",
                         help="driver-lifecycle realism: 'shifts' adds "
                              "login/logout/break schedules, 'full' adds surge "
                              "onboarding, zonal drains, stochastic offer "
                              "rejection, kitchen delays and idle repositioning "
                              "(default: none)")
        sub.add_argument("--matching-backend", choices=list(MATCHING_RUNGS),
                         default=None,
                         help="pin the matching ladder's starting rung "
                              "(default: top rung; plain kernels when no "
                              "resilience flag is set)")
        sub.add_argument("--path-backend", choices=list(PATH_RUNGS),
                         default=None,
                         help="pin the shortest-path ladder's starting rung "
                              "(default: top rung)")
        sub.add_argument("--latency-budget", type=float, default=None,
                         metavar="SECONDS",
                         help="per-window decision-latency budget; enables "
                              "the degradation controller, which demotes "
                              "backends after repeated blown windows and "
                              "recovers with hysteresis (default: disabled)")
        sub.add_argument("--faults", default=None, metavar="PLAN",
                         help="fault-injection plan: JSON text or a path to a "
                              "JSON file of fault specs (kernel slowdowns, "
                              "backend errors, worker kills); seeded and "
                              "deterministic (default: none)")

    simulate = subparsers.add_parser("simulate", help="run one policy on one city")
    add_setting_arguments(simulate)
    add_jobs_argument(simulate)
    add_obs_arguments(simulate)
    simulate.add_argument("--policy", choices=available_policies(), default="foodmatch")
    simulate.add_argument("--save-json", default=None, metavar="PATH",
                          help="write the full result (summary + per-order records) as JSON")
    simulate.add_argument("--save-csv", default=None, metavar="PATH",
                          help="write the per-order records as CSV")

    compare = subparsers.add_parser("compare", help="run several policies on one workload")
    add_setting_arguments(compare)
    add_jobs_argument(compare)
    add_obs_arguments(compare)
    compare.add_argument("--policies", nargs="+", choices=available_policies(),
                         default=["foodmatch", "greedy", "km"])

    figure = subparsers.add_parser("figure", help="regenerate one table/figure of the paper")
    add_jobs_argument(figure)
    figure.add_argument("--name", choices=sorted(_FIGURE_FUNCTIONS), required=True)
    figure.add_argument("--list", action="store_true", help="list available figures and exit")

    def add_backpressure_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--queue-capacity", type=int, default=1024, metavar="N",
                         help="bound of the ingest queue (default: 1024)")
        sub.add_argument("--high-water", type=int, default=None, metavar="N",
                         help="queue depth at which admission defers/sheds "
                              "(default: 80%% of capacity)")
        sub.add_argument("--p99-budget", type=float, default=None, metavar="SECONDS",
                         help="rolling decide-latency p99 budget; exceeding it "
                              "trips backpressure (default: disabled)")
        sub.add_argument("--backpressure-policy", choices=("defer", "shed"),
                         default="defer",
                         help="defer = lossless (producers park on the queue), "
                              "shed = lossy rejection; shedding breaks the "
                              "fingerprint-identity contract (default: defer)")

    serve = subparsers.add_parser(
        "serve", help="host one city's dispatch engine as an asyncio service")
    add_setting_arguments(serve)
    add_jobs_argument(serve)
    add_backpressure_arguments(serve)
    serve.add_argument("--policy", choices=available_policies(),
                       default="foodmatch")
    serve.add_argument("--clock", choices=("simulated", "wall"),
                       default="simulated",
                       help="simulated = watermark-gated deterministic replay, "
                            "fingerprint-identical to batch mode; wall = "
                            "windows paced against real time (default: "
                            "simulated)")
    serve.add_argument("--rate", type=float, default=60.0, metavar="X",
                       help="wall-clock speed-up: simulated seconds per real "
                            "second (default: 60)")
    serve.add_argument("--stop-after-windows", type=int, default=None,
                       metavar="N",
                       help="pause the loop once N total windows have been "
                            "stepped instead of running to the horizon "
                            "(checkpoint-and-resume)")
    serve.add_argument("--checkpoint-out", default=None, metavar="PATH",
                       help="write a checkpoint JSON when the loop pauses "
                            "before the horizon")
    serve.add_argument("--restore", default=None, metavar="PATH",
                       help="resume from a checkpoint file; the workload "
                            "flags are ignored (the scenario, policy and "
                            "engine state are embedded)")

    loadgen = subparsers.add_parser(
        "loadgen", help="drive a simulated-clock service as fast as possible "
                        "and report sustained throughput")
    add_setting_arguments(loadgen)
    add_jobs_argument(loadgen)
    add_backpressure_arguments(loadgen)
    loadgen.add_argument("--policy", choices=available_policies(),
                         default="foodmatch")
    loadgen.add_argument("--json", default=None, metavar="PATH",
                         help="write the loadgen report as JSON")

    return parser


def _setting_from_args(args: argparse.Namespace) -> ExperimentSetting:
    return ExperimentSetting(
        profile=CITY_PROFILES[args.city],
        scale=args.scale,
        start_hour=args.start_hour,
        end_hour=args.end_hour,
        delta=args.delta,
        vehicle_fraction=args.vehicle_fraction,
        seed=args.seed,
        traffic=args.traffic,
        fleet=args.fleet,
        event_resolution=args.event_resolution,
        matching_backend=args.matching_backend,
        path_backend=args.path_backend,
        latency_budget=args.latency_budget,
        faults=args.faults,
    )


def _command_simulate(args: argparse.Namespace) -> int:
    setting = _setting_from_args(args)
    result = run_setting(setting, PolicySpec.of(args.policy))
    print(f"{args.policy} on {args.city} "
          f"({args.start_hour}:00-{args.end_hour}:00, scale {args.scale})")
    for key, value in result.summary().items():
        print(f"  {key:<26} {value:.4f}")
    if result.cache_stats:
        print(format_cache_report(result.cache_stats))
    if result.resilience is not None:
        _print_resilience(result.resilience, indent="  ")
    if result.telemetry is not None:
        print(format_telemetry_report(result.telemetry))
    if args.trace_out:
        telemetry = result.telemetry
        count = write_trace_jsonl(args.trace_out, telemetry.spans,
                                  header=telemetry.header())
        print(f"wrote trace JSONL ({count} events) to {args.trace_out}")
    if args.save_json:
        from repro.workload.io import save_result_json

        save_result_json(result, args.save_json)
        print(f"wrote JSON result to {args.save_json}")
    if args.save_csv:
        from repro.workload.io import save_result_csv

        save_result_csv(result, args.save_csv)
        print(f"wrote per-order CSV to {args.save_csv}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    setting = _setting_from_args(args)
    specs = [PolicySpec.of(name) for name in args.policies]
    results = run_policy_comparison(setting, specs)
    summaries = {name: result.summary() for name, result in results.items()}
    print(format_metric_comparison(
        summaries, _COMPARE_METRICS,
        title=f"Policy comparison on {args.city} "
              f"({args.start_hour}:00-{args.end_hour}:00, scale {args.scale})"))
    telemetries = [result.telemetry for result in results.values()
                   if result.telemetry is not None]
    for telemetry in telemetries:
        print(format_telemetry_report(telemetry))
    if args.trace_out or any(t.spans for t in telemetries):
        # One campaign trace: every policy run is a cell, spans stamped with
        # their cell index (exactly what the executor's merge produces).
        merged = merge_traces([t.spans for t in telemetries],
                              cells=[t.header() for t in telemetries])
        if merged:
            print(format_trace_rollup(rollup(merged),
                                      title="campaign trace rollup (self time)"))
        if args.trace_out:
            count = write_trace_jsonl(args.trace_out, merged,
                                      header={"campaign": args.city,
                                              "cells": len(telemetries)})
            print(f"wrote trace JSONL ({count} events) to {args.trace_out}")
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    result = _FIGURE_FUNCTIONS[args.name]()
    print(f"[{result.figure_id}] {result.description}")
    print(result.text)
    return 0


def _backpressure_from_args(args: argparse.Namespace):
    from repro.service import BackpressureConfig

    try:
        return BackpressureConfig(
            queue_capacity=args.queue_capacity,
            high_water=args.high_water,
            decide_p99_budget=args.p99_budget,
            policy=args.backpressure_policy)
    except ValueError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def _resilience_from_args(args: argparse.Namespace):
    from repro.resilience import build_resilience

    try:
        return build_resilience(
            matching_backend=args.matching_backend,
            path_backend=args.path_backend,
            latency_budget=args.latency_budget,
            faults=args.faults,
            seed=args.seed)
    except (ValueError, OSError) as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def _print_resilience(snapshot: dict, indent: str = "  ") -> None:
    """Render a ResilienceManager snapshot as stats lines."""
    matching = snapshot["matching"]
    path = snapshot["path"]
    quality = snapshot["quality"]
    print(f"{indent}ladder rungs             "
          f"matching={matching['current']} path={path['current']}")
    print(f"{indent}demotions/recoveries     "
          f"{matching['demotions'] + path['demotions']}"
          f"/{matching['recoveries'] + path['recoveries']}")
    if quality["matching_samples"] or quality["path_samples"]:
        print(f"{indent}quality given up         "
              f"matching {quality['matching_delta_pct']:+.2f}% objective, "
              f"path stretch {quality['path_mean_stretch']:.3f}x")
    controller = snapshot.get("controller")
    if controller and controller.get("enabled"):
        print(f"{indent}controller               "
              f"budget {controller['latency_budget']}s, "
              f"{len(controller.get('events', []))} events")
    faults = snapshot.get("faults")
    if faults is not None:
        print(f"{indent}faults                   "
              f"{faults['declared']} declared, {faults['trips']} trips, "
              f"{len(faults['active'])} active")


def _print_service_stats(stats: dict) -> None:
    backpressure = stats["backpressure"]
    print(f"  windows stepped          {stats['windows']}")
    print(f"  orders seen              {stats['orders_seen']}")
    print(f"  admitted/deferred/shed   {backpressure['admitted']}"
          f"/{backpressure['deferred']}/{backpressure['shed']}")
    if backpressure.get("degradation_holds"):
        print(f"  degradation holds        "
              f"{backpressure['degradation_holds']}")
    print(f"  late rejections          {stats['late_rejections']}")
    decide = stats["decide_seconds"]
    if decide["count"]:
        print(f"  decide p50/p99 (s)       "
              f"{decide['p50']:.4f}/{decide['p99']:.4f}")
    resilience = stats.get("resilience")
    if resilience is not None:
        _print_resilience(resilience)


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.experiments.executor import result_fingerprint
    from repro.experiments.runner import materialize
    from repro.service import (
        DispatchService,
        WallClock,
        recorded_stream,
        remaining_orders,
        replay_orders_wall,
        serve_recorded,
        setting_config,
    )

    backpressure = _backpressure_from_args(args)
    resilience = _resilience_from_args(args)
    if args.restore:
        service = DispatchService.from_checkpoint(
            args.restore, backpressure=backpressure, resilience=resilience)
        origin = f"checkpoint {args.restore}"
    else:
        setting = _setting_from_args(args)
        scenario, oracle = materialize(setting)
        # The cached oracle may carry a repair_fraction override from an
        # earlier run_setting in this process; serve never sets one.
        oracle.__dict__.pop("repair_fraction", None)
        service = DispatchService(
            scenario, args.policy, config=setting_config(setting),
            oracle=oracle, backpressure=backpressure, resilience=resilience)
        origin = f"{args.city} scale {args.scale}"
    config = service.engine.config
    if args.clock == "wall":
        service.set_clock(WallClock(config.start, rate=args.rate))

    async def _serve():
        if args.clock == "wall":
            stream = remaining_orders(
                service, recorded_stream(service.engine.scenario, config))
            feeder = asyncio.create_task(replay_orders_wall(service, stream))
            try:
                return await service.run(max_windows=args.stop_after_windows)
            finally:
                feeder.cancel()
                try:
                    await feeder
                except asyncio.CancelledError:
                    pass
        return await serve_recorded(service,
                                    max_windows=args.stop_after_windows)

    result = asyncio.run(_serve())
    print(f"repro serve: {origin}, policy {service.engine.policy.name}, "
          f"{args.clock} clock")
    _print_service_stats(service.stats())
    if result is not None:
        print(f"  result fingerprint       {result_fingerprint(result)}")
        for key, value in result.summary().items():
            print(f"  {key:<24} {value:.4f}")
    else:
        print("  paused before the horizon completed")
        if args.checkpoint_out:
            service.checkpoint(args.checkpoint_out)
            print(f"  wrote checkpoint to {args.checkpoint_out}")
    return 0


def _command_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import pathlib
    import time

    from repro.experiments.executor import result_fingerprint
    from repro.experiments.runner import materialize
    from repro.service import DispatchService, serve_recorded, setting_config

    backpressure = _backpressure_from_args(args)
    setting = _setting_from_args(args)
    scenario, oracle = materialize(setting)
    oracle.__dict__.pop("repair_fraction", None)
    service = DispatchService(
        scenario, args.policy, config=setting_config(setting), oracle=oracle,
        backpressure=backpressure, resilience=_resilience_from_args(args))
    started = time.perf_counter()
    result = asyncio.run(serve_recorded(service))
    elapsed = time.perf_counter() - started
    stats = service.stats()
    counters = stats["backpressure"]
    rate = counters["admitted"] / elapsed if elapsed > 0 else float("inf")
    report = {
        "city": args.city,
        "policy": args.policy,
        "scale": args.scale,
        "orders_submitted": counters["submitted"],
        "orders_admitted": counters["admitted"],
        "deferred": counters["deferred"],
        "shed": counters["shed"],
        "late_rejections": stats["late_rejections"],
        "windows": stats["windows"],
        "elapsed_seconds": elapsed,
        "orders_per_second": rate,
        "decide_seconds": stats["decide_seconds"],
        "fingerprint": (result_fingerprint(result)
                        if result is not None else None),
    }
    print(f"repro loadgen: {counters['admitted']} orders in {elapsed:.2f}s "
          f"-> {rate:.1f} orders/sec sustained")
    _print_service_stats(stats)
    if report["fingerprint"] is not None:
        print(f"  result fingerprint       {report['fingerprint']}")
    if args.json:
        pathlib.Path(args.json).write_text(json.dumps(report, indent=2) + "\n",
                                           encoding="utf-8")
        print(f"wrote loadgen report to {args.json}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    set_default_jobs(args.jobs)
    if args.log_level is not None:
        try:
            obs.configure_logging(args.log_level)
        except ValueError as exc:
            parser.error(str(exc))
    try:
        kernels.set_kernel_backend(getattr(args, "kernel_backend", None))
    except ValueError as exc:
        parser.error(str(exc))
    obs_mode = getattr(args, "obs", "off")
    if getattr(args, "trace_out", None) and obs_mode != "trace":
        parser.error("--trace-out requires --obs trace")
    obs.set_mode(obs_mode)
    if args.command in _SIGNAL_COMMANDS:
        _install_signal_handlers()
    try:
        if args.command == "simulate":
            return _command_simulate(args)
        if args.command == "compare":
            return _command_compare(args)
        if args.command == "figure":
            return _command_figure(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "loadgen":
            return _command_loadgen(args)
    except GracefulExit as exc:
        return _graceful_exit(args, exc)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
