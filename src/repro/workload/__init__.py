"""Synthetic workload generation.

The paper evaluates on proprietary Swiggy order histories from three Indian
cities plus the public GrubHub instances of Reyes et al.  This package
replaces them with parametric generators that preserve the statistical
structure the evaluation depends on:

* per-city scale (restaurants, vehicles, orders per day — Table II),
* a time-of-day order intensity with lunch and dinner peaks and the
  per-city order-to-vehicle ratios of Fig. 6(a),
* restaurants clustered in commercial hot spots, customers spread around
  them within a delivery radius,
* per-restaurant, per-hour Gaussian food-preparation times.

Everything is seeded and deterministic.
"""

from repro.workload.city import (
    CityProfile,
    CITY_A,
    CITY_B,
    CITY_C,
    GRUBHUB,
    METRO,
    metro_profile,
    CITY_PROFILES,
)
from repro.workload.generator import (
    FLEET_MODES,
    Restaurant,
    Scenario,
    TRAFFIC_INTENSITIES,
    generate_fleet_plan,
    generate_scenario,
    generate_orders,
    generate_restaurants,
    generate_traffic_timeline,
    generate_vehicles,
)
from repro.workload.dataset import DatasetSummary, summarize_scenario, order_vehicle_ratio_by_slot
from repro.workload.io import (
    load_scenario,
    save_result_csv,
    save_result_json,
    save_scenario,
)

__all__ = [
    "load_scenario",
    "save_scenario",
    "save_result_json",
    "save_result_csv",
    "CityProfile",
    "CITY_A",
    "CITY_B",
    "CITY_C",
    "GRUBHUB",
    "METRO",
    "metro_profile",
    "CITY_PROFILES",
    "Restaurant",
    "Scenario",
    "generate_scenario",
    "generate_orders",
    "generate_restaurants",
    "generate_traffic_timeline",
    "generate_fleet_plan",
    "generate_vehicles",
    "TRAFFIC_INTENSITIES",
    "FLEET_MODES",
    "DatasetSummary",
    "summarize_scenario",
    "order_vehicle_ratio_by_slot",
]
