"""City profiles mirroring Table II of the paper.

Each :class:`CityProfile` captures the relative scale and temporal shape of
one of the paper's datasets.  Absolute sizes are scaled down (the paper's
City B has 116k road nodes and 159k orders per day; a laptop-scale pure
Python reproduction works with hundreds of nodes and hundreds to a few
thousand orders) but the *relationships between the cities* are preserved:

* City B has the most orders, the most vehicles and the highest
  order-to-vehicle ratio;
* City C has more restaurants than City B but fewer orders and vehicles;
* City A is much smaller than both;
* GrubHub is tiny, has long preparation times and no road network (the
  Reyes setting), which the profile represents with a very small network
  and haversine-dominated distances.

The hourly order weights reproduce the two-peak (lunch/dinner) intensity of
Fig. 6(a), with per-city peak heights chosen so that the order-to-vehicle
ratio ordering of the figure (B > C > A) holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.network.generators import (
    grid_city,
    metro_grid,
    radial_city,
    random_geometric_city,
)
from repro.network.graph import RoadNetwork


def _two_peak_weights(base: float = 0.4, lunch: float = 3.0, dinner: float = 3.5,
                      night: float = 0.08) -> tuple[float, ...]:
    """Hourly order-arrival weights with lunch (12-14h) and dinner (19-22h) peaks."""
    weights = []
    for hour in range(24):
        if 12 <= hour <= 14:
            weights.append(lunch)
        elif 19 <= hour <= 22:
            weights.append(dinner)
        elif 8 <= hour <= 11 or 15 <= hour <= 18:
            weights.append(base)
        else:
            weights.append(night)
    return tuple(weights)


@dataclass(frozen=True)
class CityProfile:
    """Parameters describing one synthetic city workload.

    Attributes
    ----------
    name:
        Human-readable name matching the paper's dataset labels.
    network_factory:
        Zero-argument callable returning the city's road network.
    num_restaurants, num_vehicles, orders_per_day:
        Scaled-down analogues of the Table II columns.
    mean_prep_minutes, prep_std_minutes:
        Parameters of the per-restaurant Gaussian preparation-time model.
    hourly_weights:
        Relative order intensity per 1-hour slot (Fig. 6(a) shape).
    delivery_radius_seconds:
        Customers are sampled from nodes within this travel time of their
        restaurant (the paper only shows restaurants within a radius).
    accumulation_window:
        Default Δ for the city (3 min for B and C, 1 min for A, per Sec. V-B).
    restaurant_hotspots:
        Number of spatial clusters restaurants are drawn from.
    """

    name: str
    network_factory: Callable[[], RoadNetwork]
    num_restaurants: int
    num_vehicles: int
    orders_per_day: int
    mean_prep_minutes: float
    prep_std_minutes: float = 2.0
    hourly_weights: tuple[float, ...] = field(default_factory=_two_peak_weights)
    delivery_radius_seconds: float = 1200.0
    accumulation_window: float = 180.0
    restaurant_hotspots: int = 4

    def scaled(self, scale: float) -> CityProfile:
        """Return a copy with order/vehicle/restaurant counts scaled by ``scale``.

        Used by tests and benchmarks to shrink a profile while keeping its
        ratios (and therefore the qualitative behaviour) intact.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        return CityProfile(
            name=self.name,
            network_factory=self.network_factory,
            num_restaurants=max(1, round(self.num_restaurants * scale)),
            num_vehicles=max(1, round(self.num_vehicles * scale)),
            orders_per_day=max(1, round(self.orders_per_day * scale)),
            mean_prep_minutes=self.mean_prep_minutes,
            prep_std_minutes=self.prep_std_minutes,
            hourly_weights=self.hourly_weights,
            delivery_radius_seconds=self.delivery_radius_seconds,
            accumulation_window=self.accumulation_window,
            restaurant_hotspots=self.restaurant_hotspots,
        )

    def with_vehicles(self, num_vehicles: int) -> CityProfile:
        """Return a copy with a different fleet size (vehicle-sweep experiments)."""
        return CityProfile(
            name=self.name,
            network_factory=self.network_factory,
            num_restaurants=self.num_restaurants,
            num_vehicles=num_vehicles,
            orders_per_day=self.orders_per_day,
            mean_prep_minutes=self.mean_prep_minutes,
            prep_std_minutes=self.prep_std_minutes,
            hourly_weights=self.hourly_weights,
            delivery_radius_seconds=self.delivery_radius_seconds,
            accumulation_window=self.accumulation_window,
            restaurant_hotspots=self.restaurant_hotspots,
        )


# --------------------------------------------------------------------------- #
# The four dataset analogues of Table II, scaled down by roughly 1:50 in order
# volume and 1:300 in network size.  City B keeps the highest order/vehicle
# ratio, City C the largest restaurant count, City A the smallest everything,
# GrubHub the longest preparation times.
# --------------------------------------------------------------------------- #
CITY_A = CityProfile(
    name="CityA",
    network_factory=lambda: grid_city(rows=11, cols=11, block_km=0.45, seed=101),
    num_restaurants=40,
    num_vehicles=48,
    orders_per_day=460,
    mean_prep_minutes=8.45,
    hourly_weights=_two_peak_weights(base=0.45, lunch=2.2, dinner=2.6),
    accumulation_window=60.0,
    restaurant_hotspots=3,
)

CITY_B = CityProfile(
    name="CityB",
    network_factory=lambda: radial_city(rings=7, spokes=16, ring_spacing_km=0.55, seed=202),
    num_restaurants=130,
    num_vehicles=260,
    orders_per_day=3100,
    mean_prep_minutes=9.34,
    hourly_weights=_two_peak_weights(base=0.5, lunch=3.4, dinner=3.9),
    accumulation_window=180.0,
    restaurant_hotspots=5,
)

CITY_C = CityProfile(
    name="CityC",
    network_factory=lambda: grid_city(rows=16, cols=16, block_km=0.5, seed=303),
    num_restaurants=160,
    num_vehicles=210,
    orders_per_day=2200,
    mean_prep_minutes=10.22,
    hourly_weights=_two_peak_weights(base=0.5, lunch=2.9, dinner=3.3),
    accumulation_window=180.0,
    restaurant_hotspots=6,
)

GRUBHUB = CityProfile(
    name="GrubHub",
    network_factory=lambda: random_geometric_city(num_nodes=80, area_km=6.0, seed=404),
    num_restaurants=16,
    num_vehicles=18,
    orders_per_day=100,
    mean_prep_minutes=19.55,
    prep_std_minutes=4.0,
    hourly_weights=_two_peak_weights(base=0.5, lunch=2.0, dinner=2.2),
    accumulation_window=180.0,
    restaurant_hotspots=2,
)

def metro_profile(rows: int = 72, cols: int = 70, *, name: str = "Metro",
                  orders_per_thousand_nodes: float = 620.0,
                  vehicles_per_thousand_nodes: float = 52.0,
                  restaurants_per_thousand_nodes: float = 36.0,
                  seed: int = 505, **metro_kwargs) -> CityProfile:
    """A metro-scale profile over a :func:`repro.network.generators.metro_grid`.

    Unlike the fixed Table II analogues, the metro profile is parameterised
    by grid size so the same workload shape scales from the 5k-node CI smoke
    city to the paper's 50k+-node OSM extracts: restaurant/vehicle/order
    counts grow linearly with the node count (densities are per thousand
    nodes, tuned to City B's order-to-vehicle ratio).  Extra keyword
    arguments pass through to :func:`metro_grid`.
    """
    num_nodes = rows * cols
    per_k = num_nodes / 1000.0
    return CityProfile(
        name=name,
        network_factory=lambda: metro_grid(rows=rows, cols=cols, seed=seed,
                                           **metro_kwargs),
        num_restaurants=max(1, round(restaurants_per_thousand_nodes * per_k)),
        num_vehicles=max(1, round(vehicles_per_thousand_nodes * per_k)),
        orders_per_day=max(1, round(orders_per_thousand_nodes * per_k)),
        mean_prep_minutes=9.34,
        hourly_weights=_two_peak_weights(base=0.5, lunch=3.2, dinner=3.7),
        accumulation_window=180.0,
        restaurant_hotspots=8,
    )


#: Default metro profile: a ~5k-node city, big enough to exercise the
#: contraction hub ordering and the shared-memory attach path, small enough
#: for CI smoke runs.
METRO = metro_profile()

CITY_PROFILES: dict[str, CityProfile] = {
    profile.name: profile for profile in (CITY_A, CITY_B, CITY_C, GRUBHUB, METRO)
}

__all__ = ["CityProfile", "CITY_A", "CITY_B", "CITY_C", "GRUBHUB", "METRO",
           "metro_profile", "CITY_PROFILES"]
