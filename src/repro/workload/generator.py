"""Order-stream, restaurant and fleet generators.

These functions turn a :class:`~repro.workload.city.CityProfile` into a fully
materialised :class:`Scenario`: a road network, a set of restaurants with
per-hour preparation-time models, a day-long stream of orders and a vehicle
fleet.  The generators reproduce the structural properties the paper's
evaluation exercises:

* restaurants cluster in a small number of commercial hot spots;
* order volume per hour follows the two-peak intensity of Fig. 6(a), with
  restaurant popularity following a Zipf-like distribution;
* customers are drawn from nodes within a bounded travel time of their
  restaurant (the app only shows nearby restaurants);
* preparation times are Gaussian per restaurant and hour slot;
* vehicles start at random nodes and work shifts that cover the whole day,
  so that fleet availability per slot tracks the profile's vehicle count.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from collections.abc import Sequence

from repro.fleet.behavior import DriverBehavior
from repro.fleet.controller import FleetPlan
from repro.fleet.shifts import (
    FleetEvent,
    FleetTimeline,
    ShiftSchedule,
    staggered_schedules,
)
from repro.network.graph import RoadNetwork, SECONDS_PER_HOUR
from repro.network.shortest_path import dijkstra_all
from repro.seeding import spawn_seed
from repro.orders.order import Order
from repro.orders.vehicle import Vehicle
from repro.traffic.events import TrafficEvent, TrafficTimeline
from repro.workload.city import CityProfile


@dataclass(frozen=True)
class Restaurant:
    """A restaurant with its node and per-hour preparation-time model."""

    restaurant_id: int
    node: int
    popularity: float
    prep_mean_by_hour: tuple[float, ...]
    prep_std: float

    def sample_prep_time(self, hour: int, rng: random.Random) -> float:
        """Draw a preparation time (seconds) for an order placed in ``hour``."""
        mean = self.prep_mean_by_hour[hour % 24]
        value = rng.gauss(mean, self.prep_std)
        return max(60.0, value)


@dataclass
class Scenario:
    """A fully materialised workload: network, restaurants, orders, fleet.

    ``traffic`` optionally carries the day's dynamic-traffic event timeline
    (incidents, closures, zonal rush hours); the simulator attaches a
    :class:`~repro.traffic.controller.TrafficController` for it automatically.
    ``fleet`` optionally carries the driver-lifecycle plan (shift schedules,
    supply events, behaviour model — see :mod:`repro.fleet`); the simulator
    attaches a :class:`~repro.fleet.controller.FleetController` for it the
    same way.  ``None`` keeps the seed static always-online fleet.
    """

    profile: CityProfile
    network: RoadNetwork
    restaurants: list[Restaurant]
    orders: list[Order]
    vehicles: list[Vehicle]
    seed: int
    traffic: TrafficTimeline = field(default_factory=TrafficTimeline.empty)
    fleet: FleetPlan | None = None

    @property
    def name(self) -> str:
        return self.profile.name

    def orders_between(self, start: float, end: float) -> list[Order]:
        """Orders placed in the half-open interval ``[start, end)``."""
        return [order for order in self.orders if start <= order.placed_at < end]

    def fresh_vehicles(self) -> list[Vehicle]:
        """Return an unused copy of the fleet (vehicles are mutable)."""
        return [Vehicle(vehicle_id=v.vehicle_id, node=v.node, shift_start=v.shift_start,
                        shift_end=v.shift_end, max_orders=v.max_orders, max_items=v.max_items)
                for v in self.vehicles]


def generate_restaurants(network: RoadNetwork, profile: CityProfile,
                         rng: random.Random) -> list[Restaurant]:
    """Place restaurants in spatial hot spots with Zipf-like popularity."""
    nodes = network.nodes
    hotspot_centers = rng.sample(nodes, min(profile.restaurant_hotspots, len(nodes)))
    restaurants: list[Restaurant] = []
    prep_mean_base = profile.mean_prep_minutes * 60.0
    for idx in range(profile.num_restaurants):
        center = hotspot_centers[idx % len(hotspot_centers)]
        node = _node_near(network, center, rng)
        popularity = 1.0 / (1.0 + idx) ** 0.7
        # Preparation times are slower during the peaks (kitchens are busy),
        # matching the per-slot Gaussian model of Sec. V-A.
        prep_by_hour = tuple(
            prep_mean_base * (1.25 if hour in (12, 13, 14, 19, 20, 21, 22) else 1.0)
            * rng.uniform(0.85, 1.15)
            for hour in range(24)
        )
        restaurants.append(Restaurant(
            restaurant_id=idx,
            node=node,
            popularity=popularity,
            prep_mean_by_hour=prep_by_hour,
            prep_std=profile.prep_std_minutes * 60.0,
        ))
    return restaurants


def _node_near(network: RoadNetwork, center: int, rng: random.Random,
               hops: int = 3) -> int:
    """Pick a node within a few hops of ``center`` (restaurant hot-spotting)."""
    frontier = {center}
    for _ in range(hops):
        expansion = set()
        for node in frontier:
            expansion.update(nbr for nbr, _ in network.neighbors(node))
        frontier |= expansion
    return rng.choice(sorted(frontier))


def generate_orders(network: RoadNetwork, restaurants: Sequence[Restaurant],
                    profile: CityProfile, rng: random.Random,
                    start_hour: int = 0, end_hour: int = 24) -> list[Order]:
    """Generate a day's order stream following the profile's hourly weights.

    The expected number of orders per hour is ``orders_per_day`` split
    proportionally to ``hourly_weights`` (restricted to the requested hour
    range); the realised count per hour is Poisson-like via independent
    Bernoulli thinning of a slightly inflated candidate count, keeping the
    generator dependency-free and deterministic under the seed.
    """
    weights = profile.hourly_weights
    hours = list(range(start_hour, end_hour))
    # Normalise against the whole day so that restricting the hour range
    # truncates the stream instead of compressing a day's volume into it.
    total_weight = sum(weights)
    if total_weight <= 0 or not hours:
        return []
    reachable_cache: dict[int, list[int]] = {}
    orders: list[Order] = []
    order_id = 0
    popularity_total = sum(r.popularity for r in restaurants)
    for hour in hours:
        expected = profile.orders_per_day * weights[hour] / total_weight
        count = _sample_count(expected, rng)
        for _ in range(count):
            restaurant = _pick_restaurant(restaurants, popularity_total, rng)
            placed_at = hour * SECONDS_PER_HOUR + rng.uniform(0.0, SECONDS_PER_HOUR)
            customer = _pick_customer(network, restaurant.node,
                                      profile.delivery_radius_seconds,
                                      reachable_cache, rng)
            prep = restaurant.sample_prep_time(hour, rng)
            items = 1 + min(4, int(rng.expovariate(1.2)))
            orders.append(Order(
                order_id=order_id,
                restaurant_node=restaurant.node,
                customer_node=customer,
                placed_at=placed_at,
                items=items,
                prep_time=prep,
                restaurant_id=restaurant.restaurant_id,
            ))
            order_id += 1
    orders.sort(key=lambda o: (o.placed_at, o.order_id))
    return orders


def _sample_count(expected: float, rng: random.Random) -> int:
    """Sample an integer with the given mean (Poisson via exponential gaps)."""
    if expected <= 0:
        return 0
    count = 0
    total = rng.expovariate(1.0)
    while total < expected:
        count += 1
        total += rng.expovariate(1.0)
    return count


def _pick_restaurant(restaurants: Sequence[Restaurant], popularity_total: float,
                     rng: random.Random) -> Restaurant:
    target = rng.uniform(0.0, popularity_total)
    acc = 0.0
    for restaurant in restaurants:
        acc += restaurant.popularity
        if acc >= target:
            return restaurant
    return restaurants[-1]


def _pick_customer(network: RoadNetwork, restaurant_node: int, radius_seconds: float,
                   cache: dict[int, list[int]], rng: random.Random) -> int:
    """Pick a customer node within ``radius_seconds`` travel of the restaurant."""
    candidates = cache.get(restaurant_node)
    if candidates is None:
        reachable = dijkstra_all(network, restaurant_node, t=0.0, cutoff=radius_seconds)
        candidates = [node for node, dist in reachable.items()
                      if node != restaurant_node and dist > 0.0]
        if not candidates:
            candidates = [node for node in network.nodes if node != restaurant_node]
        cache[restaurant_node] = candidates
    return rng.choice(candidates)


#: Named traffic intensities accepted by :func:`generate_traffic_timeline`
#: and the CLI ``--traffic`` flag, as events-per-simulated-hour scale factors.
#: Numeric values are accepted everywhere a name is (the *event density*
#: knob the ``event_density`` sweep exercises).  ``severe`` runs the
#: ``heavy`` event mix but fully severs half of its closures
#: (``factor=inf`` — the roads genuinely disappear instead of slowing).
TRAFFIC_INTENSITIES = {"none": 0.0, "light": 1.0, "heavy": 3.0, "severe": 3.0}

#: Fraction of generated closures that fully sever, per named intensity.
_SEVER_FRACTIONS = {"severe": 0.5}


def generate_traffic_timeline(network: RoadNetwork, rng: random.Random,
                              intensity: str = "light",
                              start_hour: int = 0, end_hour: int = 24,
                              sever_fraction: float | None = None,
                              ) -> TrafficTimeline:
    """Generate a day's dynamic-traffic event timeline for a network.

    ``intensity`` is a named level from :data:`TRAFFIC_INTENSITIES` (or a
    numeric events-per-hour scale — the sweepable *event density* knob).
    The mix follows what city traffic feeds report: mostly short localised
    incidents, occasional closures, zonal rush-hour slowdowns around busy
    nodes, and (at higher intensities) wide weather slowdowns.
    ``sever_fraction`` turns that share of the generated closures into
    *severed* closures (``factor=inf``); it defaults to the named
    intensity's convention (only ``severe`` severs).  The severing draws
    happen after every event draw, so timelines at ``sever_fraction=0`` are
    bit-identical to the pre-severing generator.  All draws come from
    ``rng``, so timelines are deterministic under the workload seed.
    """
    if isinstance(intensity, str):
        scale = TRAFFIC_INTENSITIES[intensity]
        if sever_fraction is None:
            sever_fraction = _SEVER_FRACTIONS.get(intensity, 0.0)
    else:
        scale = float(intensity)
    sever_fraction = sever_fraction or 0.0
    hours = max(0, end_hour - start_hour)
    edges = [(u, v) for u, v, _ in network.edges()]
    if scale <= 0.0 or hours == 0 or not edges:
        return TrafficTimeline.empty()
    window = (start_hour * SECONDS_PER_HOUR, end_hour * SECONDS_PER_HOUR)
    nodes = network.nodes
    events: list[TrafficEvent] = []

    def begin(duration: float) -> float:
        latest = max(window[0], window[1] - duration)
        return rng.uniform(window[0], latest)

    def both_directions(u: int, v: int) -> tuple[tuple[int, int], ...]:
        scope = [(u, v)]
        if network.has_edge(v, u):
            scope.append((v, u))
        return tuple(scope)

    for _ in range(max(1, round(0.75 * scale * hours))):
        u, v = rng.choice(edges)
        duration = rng.uniform(600.0, 1800.0)
        events.append(TrafficEvent(
            event_id=len(events), kind="incident",
            start=(start := begin(duration)), end=start + duration,
            factor=rng.uniform(2.0, 3.5), edges=both_directions(u, v)))
    for _ in range(round(0.25 * scale * hours)):
        u, v = rng.choice(edges)
        duration = rng.uniform(1200.0, 3600.0)
        events.append(TrafficEvent(
            event_id=len(events), kind="closure",
            start=(start := begin(duration)), end=start + duration,
            edges=both_directions(u, v)))
    for _ in range(round(0.3 * scale * hours)):
        duration = rng.uniform(3600.0, 7200.0)
        events.append(TrafficEvent(
            event_id=len(events), kind="rush_hour",
            start=(start := begin(duration)), end=start + duration,
            factor=rng.uniform(1.3, 1.7), zone_center=rng.choice(nodes),
            zone_radius_seconds=rng.uniform(180.0, 420.0)))
    for _ in range(round(0.1 * scale * hours)):
        duration = rng.uniform(3600.0, 10800.0)
        events.append(TrafficEvent(
            event_id=len(events), kind="weather",
            start=(start := begin(duration)), end=start + duration,
            factor=rng.uniform(1.15, 1.4), zone_center=rng.choice(nodes),
            zone_radius_seconds=1200.0))
    if sever_fraction > 0.0:
        # Drawn strictly after every event draw so lower intensities (and
        # sever_fraction=0) replay the exact pre-severing event stream.
        events = [replace(event, factor=math.inf)
                  if event.kind == "closure" and rng.random() < sever_fraction
                  else event
                  for event in events]
    return TrafficTimeline(tuple(events))


#: Named fleet-dynamics modes accepted by :func:`generate_fleet_plan` and the
#: CLI ``--fleet`` flag.  ``none`` keeps the seed static fleet; ``shifts``
#: adds per-vehicle login/logout/break schedules; ``full`` adds supply events
#: (surge onboarding, zonal drains), stochastic offer rejection, kitchen
#: delays and hot-spot repositioning on top.
FLEET_MODES = ("none", "shifts", "full")


def generate_fleet_plan(network: RoadNetwork, vehicles: Sequence[Vehicle],
                        rng: random.Random, mode: str = "none",
                        start_hour: int = 0, end_hour: int = 24,
                        ) -> tuple[FleetPlan | None, list[Vehicle]]:
    """Generate a day's driver-lifecycle plan for an existing fleet.

    Returns ``(plan, reserve_vehicles)``: the reserves are *extra* vehicles
    (empty base schedule, activated only by surge-onboarding events) the
    caller must append to the scenario's fleet.  ``mode`` is a named level
    from :data:`FLEET_MODES`.  All draws come from ``rng``, so plans are
    deterministic under the workload seed and the base scenario content is
    identical across modes.
    """
    if mode not in FLEET_MODES:
        raise ValueError(f"unknown fleet mode {mode!r}; known: {FLEET_MODES}")
    if mode == "none" or not vehicles:
        return None, []
    start = start_hour * SECONDS_PER_HOUR
    end = end_hour * SECONDS_PER_HOUR
    ids = [vehicle.vehicle_id for vehicle in vehicles]
    schedules = staggered_schedules(ids, start, end, rng, coverage=0.85)
    if mode == "shifts":
        return FleetPlan(schedules=schedules, timeline=FleetTimeline.empty(),
                         behavior=None, repositioning="stay",
                         seed=rng.randrange(2 ** 31)), []

    # Full dynamics: a reserve pool for surges, supply events, stochastic
    # behaviour and hot-spot repositioning.
    nodes = network.nodes
    horizon = max(1.0, end - start)
    hours = max(1, end_hour - start_hour)
    next_id = max(ids) + 1
    num_reserves = max(1, round(0.15 * len(ids)))
    # Reserves keep the default all-day *vehicle-level* window: duty is gated
    # entirely by their (empty) schedule plus surge intervals, and policies
    # re-check vehicle.is_on_duty internally — a zero-length vehicle window
    # would silently veto every assignment a surge makes possible.
    reserves = [Vehicle(vehicle_id=next_id + offset, node=rng.choice(nodes))
                for offset in range(num_reserves)]
    for vehicle in reserves:
        schedules[vehicle.vehicle_id] = ShiftSchedule.off()

    def begin(duration: float) -> float:
        latest = max(start, end - duration)
        return rng.uniform(start, latest)

    events: list[FleetEvent] = []
    for _ in range(max(1, round(hours / 3))):
        duration = min(horizon, rng.uniform(1800.0, 5400.0))
        events.append(FleetEvent(
            event_id=len(events), kind="surge_onboarding",
            start=(first := begin(duration)), end=first + duration,
            count=max(1, round(num_reserves * rng.uniform(0.4, 1.0)))))
    for _ in range(max(1, round(hours / 2))):
        duration = min(horizon, rng.uniform(1200.0, 3600.0))
        events.append(FleetEvent(
            event_id=len(events), kind="driver_drain",
            start=(first := begin(duration)), end=first + duration,
            fraction=rng.uniform(0.2, 0.45), zone_center=rng.choice(nodes),
            zone_radius_seconds=rng.uniform(240.0, 480.0)))
    plan = FleetPlan(
        schedules=schedules,
        timeline=FleetTimeline(tuple(events)),
        behavior=DriverBehavior(seed=rng.randrange(2 ** 31)),
        repositioning="hotspot",
        seed=rng.randrange(2 ** 31),
        reserve_ids=tuple(vehicle.vehicle_id for vehicle in reserves),
    )
    return plan, reserves


def generate_vehicles(network: RoadNetwork, profile: CityProfile,
                      rng: random.Random) -> list[Vehicle]:
    """Create the vehicle fleet, spread over the network with all-day shifts.

    The paper sets a vehicle's initial position to its first GPS ping of the
    test day; here the initial node is uniform over the network.  Shifts span
    the whole day with small random staggering so the per-slot availability
    is essentially constant, as assumed by the order/vehicle-ratio figure.
    """
    nodes = network.nodes
    vehicles: list[Vehicle] = []
    for idx in range(profile.num_vehicles):
        node = rng.choice(nodes)
        shift_start = rng.uniform(0.0, 1.0) * SECONDS_PER_HOUR * 0.5
        vehicles.append(Vehicle(
            vehicle_id=idx,
            node=node,
            shift_start=shift_start,
            shift_end=86400.0,
        ))
    return vehicles


def generate_scenario(profile: CityProfile, seed: int = 0,
                      start_hour: int = 0, end_hour: int = 24,
                      traffic: str | float = "none",
                      fleet: str = "none",
                      network: RoadNetwork | None = None) -> Scenario:
    """Materialise a complete scenario for a city profile.

    ``start_hour`` / ``end_hour`` restrict the generated order stream (the
    experiments frequently simulate only the lunch window to keep runtimes
    reasonable); the fleet and restaurants are always generated in full.
    ``traffic`` selects a dynamic-traffic intensity from
    :data:`TRAFFIC_INTENSITIES` — or a numeric events-per-hour density, the
    knob the ``event_density`` sweep varies — (``"none"`` keeps the network
    static, as in earlier revisions); ``fleet`` selects a driver-lifecycle
    mode from
    :data:`FLEET_MODES` (``"none"`` keeps the static always-online fleet).
    Both draw from seeds derived from the workload seed, so the base
    scenario content is identical across traffic/fleet modes.

    ``network`` substitutes a pre-materialised network for the one
    ``profile.network_factory`` would build — the shared-memory sweep path
    passes the attached view of the parent's packed network here.  The
    caller is responsible for it being equivalent to the factory's output
    (same nodes, edges and weights in the same order); workload generation
    is then bit-identical to the owned-network scenario.
    """
    rng = random.Random(seed)
    if network is None:
        network = profile.network_factory()
    restaurants = generate_restaurants(network, profile, rng)
    orders = generate_orders(network, restaurants, profile, rng,
                             start_hour=start_hour, end_hour=end_hour)
    vehicles = generate_vehicles(network, profile, rng)
    # Derived streams use hierarchical hashed seeds (not fixed offsets): an
    # offset scheme makes the traffic stream of seed s the workload stream
    # of seed s + offset, so sweeps over several seeds could replay
    # correlated randomness across cells.
    timeline = generate_traffic_timeline(network,
                                         random.Random(spawn_seed(seed, "traffic")),
                                         intensity=traffic,
                                         start_hour=start_hour, end_hour=end_hour)
    fleet_plan, reserves = generate_fleet_plan(network, vehicles,
                                               random.Random(spawn_seed(seed, "fleet")),
                                               mode=fleet,
                                               start_hour=start_hour,
                                               end_hour=end_hour)
    return Scenario(profile=profile, network=network, restaurants=restaurants,
                    orders=orders, vehicles=vehicles + reserves, seed=seed,
                    traffic=timeline, fleet=fleet_plan)


__all__ = [
    "Restaurant",
    "Scenario",
    "TRAFFIC_INTENSITIES",
    "FLEET_MODES",
    "generate_restaurants",
    "generate_orders",
    "generate_vehicles",
    "generate_traffic_timeline",
    "generate_fleet_plan",
    "generate_scenario",
]
