"""Dataset summary statistics (Table II and Fig. 6(a) analogues)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.graph import SECONDS_PER_HOUR
from repro.workload.generator import Scenario


@dataclass(frozen=True)
class DatasetSummary:
    """One row of the Table II analogue for a generated scenario."""

    city: str
    num_restaurants: int
    num_vehicles: int
    num_orders: int
    avg_prep_minutes: float
    num_nodes: int
    num_edges: int

    def as_row(self) -> str:
        """Format the summary as a fixed-width table row."""
        return (f"{self.city:<10} {self.num_restaurants:>8} {self.num_vehicles:>10} "
                f"{self.num_orders:>9} {self.avg_prep_minutes:>12.2f} "
                f"{self.num_nodes:>8} {self.num_edges:>8}")

    @staticmethod
    def header() -> str:
        return (f"{'City':<10} {'#Rest.':>8} {'#Vehicles':>10} {'#Orders':>9} "
                f"{'Prep(min)':>12} {'#Nodes':>8} {'#Edges':>8}")


def summarize_scenario(scenario: Scenario) -> DatasetSummary:
    """Compute the Table II row for a materialised scenario."""
    orders = scenario.orders
    avg_prep = (sum(o.prep_time for o in orders) / len(orders) / 60.0) if orders else 0.0
    return DatasetSummary(
        city=scenario.name,
        num_restaurants=len(scenario.restaurants),
        num_vehicles=len(scenario.vehicles),
        num_orders=len(orders),
        avg_prep_minutes=avg_prep,
        num_nodes=scenario.network.num_nodes,
        num_edges=scenario.network.num_edges,
    )


def order_vehicle_ratio_by_slot(scenario: Scenario) -> list[float]:
    """Order-to-vehicle ratio per 1-hour slot (the series plotted in Fig. 6(a)).

    The denominator is the number of vehicles on duty during the slot; the
    numerator is the number of orders placed in it.
    """
    ratios: list[float] = []
    for hour in range(24):
        start = hour * SECONDS_PER_HOUR
        end = start + SECONDS_PER_HOUR
        orders = len(scenario.orders_between(start, end))
        vehicles = sum(1 for v in scenario.vehicles
                       if v.shift_start < end and v.shift_end > start)
        ratios.append(orders / vehicles if vehicles else float(orders))
    return ratios


def peak_slots(scenario: Scenario, top: int = 6) -> list[int]:
    """The ``top`` busiest 1-hour slots (lunch/dinner under the default profile)."""
    ratios = order_vehicle_ratio_by_slot(scenario)
    return sorted(range(24), key=lambda h: ratios[h], reverse=True)[:top]


__all__ = ["DatasetSummary", "summarize_scenario", "order_vehicle_ratio_by_slot", "peak_slots"]
