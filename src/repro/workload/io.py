"""Serialisation of workloads and simulation results.

The paper releases its (anonymised) order history as static files so that
experiments can be repeated; this module plays the same role for the
synthetic workloads: a generated :class:`~repro.workload.generator.Scenario`
can be written to a single JSON document (road network, restaurants, orders,
fleet, traffic-event timeline) and read back bit-for-bit, and a
:class:`~repro.sim.metrics.SimulationResult` can be exported as JSON (summary
plus per-order records) or CSV (per-order records only) for external
analysis.
"""

from __future__ import annotations

import csv
import json
import math
import pathlib

from repro.fleet.behavior import behavior_from_dict, behavior_to_dict
from repro.fleet.controller import FleetPlan
from repro.fleet.shifts import FleetEvent, FleetTimeline, ShiftSchedule
from repro.network.graph import RoadNetwork, TimeProfile
from repro.orders.order import Order
from repro.orders.vehicle import Vehicle
from repro.sim.metrics import SimulationResult
from repro.traffic.events import TrafficEvent, TrafficTimeline
from repro.workload.city import CITY_PROFILES, CityProfile
from repro.workload.generator import Restaurant, Scenario

PathLike = str | pathlib.Path

#: Version 2 added the optional dynamic-traffic event timeline; version 3
#: added the optional driver-lifecycle fleet plan (shift schedules, supply
#: events, behaviour model); version 4 added *severed* closures (a traffic
#: event whose ``sever`` flag marks an infinite factor — JSON has no inf, so
#: the factor is stored as ``null``) and strict finite-epoch validation of
#: every event timestamp and duty block on load.  Older documents (no
#: ``traffic`` / ``fleet`` key, no ``sever`` flag) still load unchanged.
_FORMAT_VERSION = 4
_SUPPORTED_VERSIONS = (1, 2, 3, 4)


def _finite(value: object, context: str) -> float:
    """Coerce a JSON number to a finite float, naming the offender.

    The event/schedule constructors validate finiteness too, but a malformed
    document should fail with the JSON location (which event, which vehicle)
    rather than a bare constructor message — and the check must hold even if
    a future constructor grows laxer.
    """
    number = float(value)  # type: ignore[arg-type]
    if not math.isfinite(number):
        raise ValueError(f"{context} must be finite (got {number})")
    return number


# --------------------------------------------------------------------------- #
# scenario serialisation
# --------------------------------------------------------------------------- #
def scenario_to_dict(scenario: Scenario) -> dict:
    """Convert a scenario into a JSON-serialisable dictionary."""
    network = scenario.network
    return {
        "format_version": _FORMAT_VERSION,
        "profile_name": scenario.profile.name,
        "seed": scenario.seed,
        "network": {
            "profile_multipliers": list(network.profile.multipliers),
            "nodes": [[node, *network.coord(node)] for node in network.nodes],
            # Edge rows carry the static per-edge congestion multiplier as
            # an optional 4th element (omitted when 1.0): dropping it would
            # change effective weights *and* the Eq. 8 normalisation bound
            # on load, breaking round-trip fingerprint identity.
            "edges": [
                [u, v, w] if network.edge_multiplier(u, v) == 1.0
                else [u, v, w, network.edge_multiplier(u, v)]
                for u, v, w in network.edges()
            ],
        },
        "restaurants": [
            {
                "restaurant_id": r.restaurant_id,
                "node": r.node,
                "popularity": r.popularity,
                "prep_mean_by_hour": list(r.prep_mean_by_hour),
                "prep_std": r.prep_std,
            }
            for r in scenario.restaurants
        ],
        "orders": [
            {
                "order_id": o.order_id,
                "restaurant_node": o.restaurant_node,
                "customer_node": o.customer_node,
                "placed_at": o.placed_at,
                "items": o.items,
                "prep_time": o.prep_time,
                "restaurant_id": o.restaurant_id,
            }
            for o in scenario.orders
        ],
        "vehicles": [
            {
                "vehicle_id": v.vehicle_id,
                "node": v.node,
                "shift_start": v.shift_start,
                "shift_end": v.shift_end,
                "max_orders": v.max_orders,
                "max_items": v.max_items,
            }
            for v in scenario.vehicles
        ],
        "traffic": [
            {
                "event_id": e.event_id,
                "kind": e.kind,
                "start": e.start,
                "end": e.end,
                # JSON has no infinity: a severed closure stores a null
                # factor plus the sever flag (format v4).
                "factor": None if e.severs else e.factor,
                "sever": e.severs,
                "edges": [[u, v] for u, v in e.edges],
                "zone_center": e.zone_center,
                "zone_radius_seconds": e.zone_radius_seconds,
            }
            for e in scenario.traffic
        ],
        "fleet": _fleet_plan_to_dict(scenario.fleet),
    }


def _fleet_plan_to_dict(plan) -> dict | None:
    """Serialise an optional :class:`~repro.fleet.controller.FleetPlan`."""
    if plan is None:
        return None
    return {
        "schedules": {
            str(vehicle_id): [[start, end] for start, end in schedule.intervals]
            for vehicle_id, schedule in sorted(plan.schedules.items())
        },
        "events": [
            {
                "event_id": e.event_id,
                "kind": e.kind,
                "start": e.start,
                "end": e.end,
                "count": e.count,
                "fraction": e.fraction,
                "zone_center": e.zone_center,
                "zone_radius_seconds": e.zone_radius_seconds,
            }
            for e in plan.timeline
        ],
        "behavior": behavior_to_dict(plan.behavior),
        "repositioning": plan.repositioning,
        "seed": plan.seed,
        "reserve_ids": list(plan.reserve_ids),
    }


def _fleet_plan_from_dict(payload: dict | None) -> FleetPlan | None:
    """Rebuild an optional fleet plan (inverse of :func:`_fleet_plan_to_dict`)."""
    if payload is None:
        return None
    # Epochs are validated *here*, with the JSON location in the message:
    # a NaN smuggled into a duty block or event window must name the vehicle
    # or event it rode in on, mirroring TrafficEvent's own start/end checks.
    schedules = {
        int(vehicle_id): ShiftSchedule(tuple(
            (_finite(start, f"shift block start of vehicle {vehicle_id}"),
             _finite(end, f"shift block end of vehicle {vehicle_id}"))
            for start, end in blocks))
        for vehicle_id, blocks in payload["schedules"].items()
    }
    timeline = FleetTimeline(tuple(
        FleetEvent(
            event_id=int(e["event_id"]),
            kind=str(e["kind"]),
            start=_finite(e["start"], f"fleet event {e['event_id']} start"),
            end=_finite(e["end"], f"fleet event {e['event_id']} end"),
            count=int(e["count"]),
            fraction=float(e["fraction"]),
            zone_center=None if e["zone_center"] is None else int(e["zone_center"]),
            zone_radius_seconds=float(e["zone_radius_seconds"]),
        )
        for e in payload["events"]
    ))
    return FleetPlan(
        schedules=schedules,
        timeline=timeline,
        behavior=behavior_from_dict(payload["behavior"]),
        repositioning=str(payload["repositioning"]),
        seed=int(payload["seed"]),
        reserve_ids=tuple(int(v) for v in payload["reserve_ids"]),
    )


def scenario_from_dict(payload: dict) -> Scenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output.

    The city profile is looked up by name in the built-in registry; unknown
    names fall back to a minimal placeholder profile (the profile is only
    metadata once the scenario is materialised).
    """
    version = payload.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported scenario format version: {version!r}")
    network_data = payload["network"]
    network = RoadNetwork(TimeProfile(tuple(network_data["profile_multipliers"])))
    for node, lat, lon in network_data["nodes"]:
        network.add_node(int(node), float(lat), float(lon))
    for row in network_data["edges"]:
        u, v, w = row[0], row[1], row[2]
        multiplier = float(row[3]) if len(row) > 3 else 1.0
        network.add_edge(int(u), int(v), float(w), multiplier)

    restaurants = [
        Restaurant(
            restaurant_id=int(r["restaurant_id"]),
            node=int(r["node"]),
            popularity=float(r["popularity"]),
            prep_mean_by_hour=tuple(float(x) for x in r["prep_mean_by_hour"]),
            prep_std=float(r["prep_std"]),
        )
        for r in payload["restaurants"]
    ]
    orders = [
        Order(
            order_id=int(o["order_id"]),
            restaurant_node=int(o["restaurant_node"]),
            customer_node=int(o["customer_node"]),
            placed_at=float(o["placed_at"]),
            items=int(o["items"]),
            prep_time=float(o["prep_time"]),
            restaurant_id=None if o["restaurant_id"] is None else int(o["restaurant_id"]),
        )
        for o in payload["orders"]
    ]
    vehicles = [
        Vehicle(
            vehicle_id=int(v["vehicle_id"]),
            node=int(v["node"]),
            shift_start=float(v["shift_start"]),
            shift_end=float(v["shift_end"]),
            max_orders=int(v["max_orders"]),
            max_items=int(v["max_items"]),
        )
        for v in payload["vehicles"]
    ]

    traffic = TrafficTimeline(tuple(
        TrafficEvent(
            event_id=int(e["event_id"]),
            kind=str(e["kind"]),
            start=_finite(e["start"], f"traffic event {e['event_id']} start"),
            end=_finite(e["end"], f"traffic event {e['event_id']} end"),
            factor=math.inf if e.get("sever") else float(e["factor"]),
            edges=tuple((int(u), int(v)) for u, v in e["edges"]),
            zone_center=None if e["zone_center"] is None else int(e["zone_center"]),
            zone_radius_seconds=float(e["zone_radius_seconds"]),
        )
        for e in payload.get("traffic", [])
    ))

    profile_name = payload["profile_name"]
    profile = CITY_PROFILES.get(profile_name)
    if profile is None:
        profile = CityProfile(name=profile_name, network_factory=lambda: network,
                              num_restaurants=len(restaurants),
                              num_vehicles=len(vehicles),
                              orders_per_day=len(orders),
                              mean_prep_minutes=10.0)
    return Scenario(profile=profile, network=network, restaurants=restaurants,
                    orders=orders, vehicles=vehicles, seed=int(payload["seed"]),
                    traffic=traffic,
                    fleet=_fleet_plan_from_dict(payload.get("fleet")))


def save_scenario(scenario: Scenario, path: PathLike) -> None:
    """Write a scenario to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(scenario_to_dict(scenario), handle)


def load_scenario(path: PathLike) -> Scenario:
    """Read a scenario previously written with :func:`save_scenario`."""
    with open(path, encoding="utf-8") as handle:
        return scenario_from_dict(json.load(handle))


# --------------------------------------------------------------------------- #
# result serialisation
# --------------------------------------------------------------------------- #
def result_to_dict(result: SimulationResult) -> dict:
    """Convert a simulation result into a JSON-serialisable dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "policy": result.policy_name,
        "city": result.city_name,
        "delta": result.delta,
        "simulated_seconds": result.simulated_seconds,
        "summary": result.summary(),
        "orders": [
            {
                "order_id": outcome.order.order_id,
                "placed_at": outcome.order.placed_at,
                "sdt": outcome.sdt,
                "assigned_at": outcome.assigned_at,
                "picked_up_at": outcome.picked_up_at,
                "delivered_at": outcome.delivered_at,
                "rejected": outcome.rejected,
                "vehicle_id": outcome.vehicle_id,
                "reassignments": outcome.reassignments,
                "offer_rejections": outcome.offer_rejections,
                "handoffs": outcome.handoffs,
                "xdt": outcome.xdt,
            }
            for outcome in result.outcomes.values()
        ],
        "windows": [
            {
                "start": window.start,
                "end": window.end,
                "num_orders": window.num_orders,
                "num_vehicles": window.num_vehicles,
                "num_assigned_orders": window.num_assigned_orders,
                "decision_seconds": window.decision_seconds,
                "num_declined_offers": window.num_declined_offers,
                "num_handoffs": window.num_handoffs,
            }
            for window in result.windows
        ],
    }


def save_result_json(result: SimulationResult, path: PathLike) -> None:
    """Write a simulation result (summary + per-order records) as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result), handle)


def save_result_csv(result: SimulationResult, path: PathLike) -> None:
    """Write the per-order records of a simulation result as CSV."""
    fields = ["order_id", "placed_at", "sdt", "assigned_at", "picked_up_at",
              "delivered_at", "rejected", "vehicle_id", "reassignments",
              "offer_rejections", "handoffs", "xdt"]
    rows: list[dict] = result_to_dict(result)["orders"]
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


__all__ = [
    "scenario_to_dict",
    "scenario_from_dict",
    "save_scenario",
    "load_scenario",
    "result_to_dict",
    "save_result_json",
    "save_result_csv",
]
