"""Parameter sweeps used by the sensitivity figures (Figs. 7-9).

Every sweep runs the same workload under a series of parameter values and
collects the metrics the corresponding figure plots.  The return value is a
:class:`SweepResult`, a small container mapping parameter values to metric
dictionaries; the figure functions and benchmarks format these into the
paper's series.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Sequence

from repro.experiments.runner import ExperimentSetting, PolicySpec
from repro.sim.metrics import SimulationResult


@dataclass
class SweepResult:
    """Metrics collected for each value of a swept parameter."""

    parameter: str
    values: list[float] = field(default_factory=list)
    metrics: dict[float, dict[str, float]] = field(default_factory=dict)
    results: dict[float, SimulationResult] = field(default_factory=dict)
    #: optional human-readable labels for categorical sweeps (parallel to
    #: ``values``), e.g. the traffic intensity names
    labels: list[str] = field(default_factory=list)

    def record(self, value: float, result: SimulationResult) -> None:
        self.values.append(value)
        self.metrics[value] = result.summary()
        self.results[value] = result

    def series(self, metric: str) -> list[float]:
        """The metric values in sweep order (one per parameter value)."""
        return [self.metrics[value][metric] for value in self.values]

    def as_table(self, metric_names: Sequence[str]) -> str:
        """Format selected metrics as a fixed-width text table."""
        header = f"{self.parameter:>12} " + " ".join(f"{m:>22}" for m in metric_names)
        lines = [header]
        for value in self.values:
            row = f"{value:>12.3f} " + " ".join(
                f"{self.metrics[value][m]:>22.4f}" for m in metric_names)
            lines.append(row)
        return "\n".join(lines)


def _run_sweep(parameter: str,
               entries: Sequence[tuple[float, ExperimentSetting, PolicySpec]],
               jobs: int | None,
               labels: Sequence[str] = ()) -> SweepResult:
    """Run a sweep's cells through the experiment executor.

    ``entries`` is the sweep grid in recording order.  With ``jobs`` (or
    the session default) above one the cells fan out over worker processes;
    results are recorded in grid order either way, and parallel output is
    bit-identical to serial (see :mod:`repro.experiments.executor`).
    """
    from repro.experiments.executor import ExperimentCell, run_cells

    sweep = SweepResult(parameter=parameter)
    sweep.labels = list(labels)
    cells = [ExperimentCell(setting, spec, tag=value)
             for value, setting, spec in entries]
    for cell_result in run_cells(cells, jobs=jobs):
        sweep.record(cell_result.cell.tag, cell_result.require())
    return sweep


def sweep_vehicles(setting: ExperimentSetting, policy: PolicySpec,
                   fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
                   jobs: int | None = None) -> SweepResult:
    """Vary the available fleet fraction (Fig. 7(b)-(e))."""
    return _run_sweep("vehicle_fraction",
                      [(fraction, replace(setting, vehicle_fraction=fraction), policy)
                       for fraction in fractions], jobs)


def sweep_eta(setting: ExperimentSetting, etas: Sequence[float] = (30.0, 60.0, 90.0, 120.0, 150.0),
              base_options: dict[str, object] | None = None,
              jobs: int | None = None) -> SweepResult:
    """Vary the batching quality threshold η (Fig. 8(a)-(c))."""
    base = dict(base_options or {})
    return _run_sweep("eta",
                      [(eta, setting, PolicySpec.of("foodmatch", eta=eta, **base))
                       for eta in etas], jobs)


def sweep_delta(setting: ExperimentSetting, policy: PolicySpec,
                deltas: Sequence[float] = (60.0, 120.0, 180.0, 240.0),
                jobs: int | None = None) -> SweepResult:
    """Vary the accumulation window Δ (Fig. 8(d)-(g))."""
    return _run_sweep("delta",
                      [(delta, replace(setting, delta=delta), policy)
                       for delta in deltas], jobs)


def sweep_k(setting: ExperimentSetting, ks: Sequence[int] = (2, 4, 8, 16, 32),
            base_options: dict[str, object] | None = None,
            jobs: int | None = None) -> SweepResult:
    """Vary the per-vehicle FoodGraph degree bound k (Fig. 8(h)-(k)).

    The paper sweeps k in [50, 300] on city-scale instances; the scaled-down
    workloads here use proportionally smaller values.
    """
    base = dict(base_options or {})
    return _run_sweep("k",
                      [(float(k), setting, PolicySpec.of("foodmatch", k=int(k), **base))
                       for k in ks], jobs)


def sweep_traffic(setting: ExperimentSetting, policy: PolicySpec,
                  intensities: Sequence[str] = ("none", "light", "heavy"),
                  jobs: int | None = None) -> SweepResult:
    """Robustness under incidents: vary the dynamic-traffic intensity.

    The same workload is replayed with increasingly severe traffic-event
    timelines (incidents, closures, zonal rush hours — see
    :mod:`repro.traffic`).  The sweep parameter is the intensity's index in
    ``intensities`` (the labels are not numeric); :attr:`SweepResult.labels`
    keeps the names.
    """
    return _run_sweep("traffic",
                      [(float(position), replace(setting, traffic=intensity), policy)
                       for position, intensity in enumerate(intensities)],
                      jobs, labels=intensities)


def sweep_event_density(setting: ExperimentSetting, policy: PolicySpec,
                        densities: Sequence[float] = (0.0, 1.0, 3.0, 6.0),
                        resolution: str = "continuous",
                        jobs: int | None = None) -> SweepResult:
    """Scenario diversity as a first-class axis: vary the traffic event rate.

    The same workload is replayed with the dynamic-traffic event generator
    scaled to ``density`` events per simulated hour (``0.0`` is the static
    network) and the events applied at their exact timestamps
    (``resolution="continuous"`` by default; pass ``"window"`` to quantize
    them to window boundaries — the pre-event-clock engine).  Where the
    named-intensity sweep (:func:`sweep_traffic`) compares three coarse
    levels, this sweep treats event density as a continuous knob, which is
    what the ``event_density`` figure and the PR 5 benchmark chart.
    """
    return _run_sweep("event_density",
                      [(float(density),
                        replace(setting, traffic=float(density),
                                event_resolution=resolution), policy)
                       for density in densities], jobs)


def sweep_fleet(setting: ExperimentSetting, policy: PolicySpec,
                modes: Sequence[str] = ("none", "shifts", "full"),
                jobs: int | None = None) -> SweepResult:
    """Robustness under supply dynamics: vary the fleet-lifecycle mode.

    The same workload is replayed with increasingly realistic driver
    lifecycles — static always-online fleet, staggered shift schedules with
    breaks, and full dynamics (surge onboarding, zonal drains, stochastic
    offer rejection, kitchen delays, hot-spot repositioning — see
    :mod:`repro.fleet`).  Like :func:`sweep_traffic`, the sweep parameter is
    the mode's index in ``modes`` and :attr:`SweepResult.labels` keeps the
    names.
    """
    return _run_sweep("fleet",
                      [(float(position), replace(setting, fleet=mode), policy)
                       for position, mode in enumerate(modes)],
                      jobs, labels=modes)


#: The (matching, path) rung pairs :func:`sweep_degradation` steps through —
#: the backend ladders' rungs walked in lockstep, exact to cheapest.
DEGRADATION_RUNGS = (
    ("scipy", "hub_labels"),
    ("hungarian", "dijkstra"),
    ("greedy_approx", "bounded_hop_approx"),
)


def sweep_degradation(setting: ExperimentSetting, policy: PolicySpec,
                      rungs: Sequence[tuple[str, str]] = DEGRADATION_RUNGS,
                      jobs: int | None = None) -> SweepResult:
    """Quality across the degradation ladder: pin each rung pair and rerun.

    The same workload is replayed with the matching and path ladders pinned
    one rung further down each time (``scipy``/``hub_labels`` first — the
    exact baseline every other rung's quality delta is measured against).
    Categorical like :func:`sweep_traffic`: the sweep parameter is the rung
    pair's index and :attr:`SweepResult.labels` keeps
    ``"matching+path"``-style names.  This is the quality-vs-load curve's
    quality axis; ``benchmarks/bench_resilience.py`` adds the load axis.
    """
    labels = [f"{matching}+{path}" for matching, path in rungs]
    return _run_sweep("degradation",
                      [(float(position),
                        replace(setting, matching_backend=matching,
                                path_backend=path), policy)
                       for position, (matching, path) in enumerate(rungs)],
                      jobs, labels=labels)


def sweep_gamma(setting: ExperimentSetting, gammas: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
                base_options: dict[str, object] | None = None,
                jobs: int | None = None) -> SweepResult:
    """Vary the angular-distance weighting γ (Fig. 9(a)-(c))."""
    base = dict(base_options or {})
    return _run_sweep("gamma",
                      [(gamma, setting, PolicySpec.of("foodmatch", gamma=gamma, **base))
                       for gamma in gammas], jobs)


def sweep_gamma_rejections(setting: ExperimentSetting,
                           gammas: Sequence[float] = (0.1, 0.5, 0.9),
                           fractions: Sequence[float] = (0.1, 0.2, 0.3),
                           base_options: dict[str, object] | None = None,
                           jobs: int | None = None,
                           ) -> dict[float, SweepResult]:
    """Rejection rate vs fleet size for several γ values (Fig. 9(d))."""
    results: dict[float, SweepResult] = {}
    base = dict(base_options or {})
    for gamma in gammas:
        spec = PolicySpec.of("foodmatch", gamma=gamma, **base)
        results[gamma] = sweep_vehicles(setting, spec, fractions, jobs=jobs)
    return results


__all__ = [
    "SweepResult",
    "sweep_vehicles",
    "sweep_eta",
    "sweep_delta",
    "sweep_k",
    "sweep_gamma",
    "sweep_gamma_rejections",
    "sweep_traffic",
    "sweep_event_density",
    "sweep_fleet",
    "sweep_degradation",
    "DEGRADATION_RUNGS",
]
