"""Per-figure / per-table reproduction functions.

Every table and figure of the paper's evaluation has a function here that
regenerates its data series on the synthetic workloads, at a configurable
scale.  The functions return a :class:`FigureResult` holding both the raw
series (for assertions in tests/benchmarks and for ``EXPERIMENTS.md``) and a
formatted text table.

Index (see DESIGN.md for the complete mapping):

========  ===================================================================
Table II  :func:`table2_dataset_summary`
Fig 4(a)  :func:`fig4a_percentile_ranks`
Fig 6(a)  :func:`fig6a_order_vehicle_ratio`
Fig 6(b)  :func:`fig6b_vs_reyes`
Fig 6(c-e) :func:`fig6cde_vs_greedy`
Fig 6(f-h) :func:`fig6fgh_scalability`
Fig 6(i-k) :func:`fig6ijk_improvement_by_slot`
Fig 7(a)  :func:`fig7a_ablation`
Fig 7(b-e) :func:`fig7bcde_vehicle_sweep`
Fig 8(a-c) :func:`fig8abc_eta_sweep`
Fig 8(d-g) :func:`fig8defg_delta_sweep`
Fig 8(h-k) :func:`fig8hijk_k_sweep`
Fig 9(a-d) :func:`fig9_gamma_sweep`
========  ===================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.core.km_baseline import KMPolicy
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import (
    ExperimentSetting,
    PolicySpec,
    improvement_percent,
    materialize,
    run_policy_comparison,
    run_setting,
)
from repro.experiments.sweeps import (
    DEGRADATION_RUNGS,
    sweep_degradation,
    sweep_delta,
    sweep_eta,
    sweep_event_density,
    sweep_fleet,
    sweep_gamma,
    sweep_gamma_rejections,
    sweep_k,
    sweep_traffic,
    sweep_vehicles,
)
from repro.network.graph import SECONDS_PER_HOUR
from repro.orders.costs import CostModel
from repro.workload.city import CITY_A, CITY_B, CITY_C, GRUBHUB, CityProfile
from repro.workload.dataset import order_vehicle_ratio_by_slot, summarize_scenario
from repro.workload.generator import generate_scenario


@dataclass
class FigureResult:
    """Raw data plus a formatted text rendition of one reproduced figure."""

    figure_id: str
    description: str
    data: dict[str, object] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"[{self.figure_id}] {self.description}\n{self.text}"


# --------------------------------------------------------------------------- #
# default experiment settings
# --------------------------------------------------------------------------- #
def default_settings(scale: float = 0.1, start_hour: int = 12, end_hour: int = 14,
                     seed: int = 0, include_grubhub: bool = False,
                     vehicle_fraction: float = 0.45,
                     ) -> dict[str, ExperimentSetting]:
    """Per-city experiment settings used by the figure functions.

    The scale keeps the synthetic workloads laptop-sized while preserving the
    between-city ratios; the simulated window covers the lunch peak.  The
    default ``vehicle_fraction`` of 0.5 puts the system under the peak-hour
    vehicle scarcity (order volume above the fleet's service rate) at which
    the paper's headline comparisons are made — the evaluation cities run
    above an order/vehicle ratio of 1 during lunch and dinner (Fig. 6(a)).
    """
    profiles: list[CityProfile] = [CITY_B, CITY_C, CITY_A]
    if include_grubhub:
        profiles.append(GRUBHUB)
    settings = {}
    for profile in profiles:
        # City A and GrubHub are an order of magnitude smaller than B and C
        # to begin with (Table II); scaling them down as aggressively would
        # leave too few orders per window to exercise batching at all.
        city_scale = scale
        if profile.name == "CityA":
            city_scale = min(1.0, scale * 3.0)
        elif profile.name == "GrubHub":
            city_scale = 1.0
        settings[profile.name] = ExperimentSetting(
            profile=profile, scale=city_scale, start_hour=start_hour,
            end_hour=end_hour, seed=seed, vehicle_fraction=vehicle_fraction)
    return settings


# --------------------------------------------------------------------------- #
# Table II and workload figures
# --------------------------------------------------------------------------- #
def table2_dataset_summary(scale: float = 1.0, seed: int = 0) -> FigureResult:
    """Table II: dataset summary for the four city analogues."""
    rows = []
    data = {}
    for profile in (GRUBHUB, CITY_A, CITY_B, CITY_C):
        scenario = generate_scenario(profile.scaled(scale), seed=seed)
        summary = summarize_scenario(scenario)
        data[profile.name] = summary
        rows.append([summary.city, summary.num_restaurants, summary.num_vehicles,
                     summary.num_orders, summary.avg_prep_minutes,
                     summary.num_nodes, summary.num_edges])
    text = format_table(
        ["City", "#Rest.", "#Vehicles", "#Orders", "Prep(min)", "#Nodes", "#Edges"],
        rows, title="Table II — dataset summary (synthetic analogues)")
    return FigureResult("Table II", "Dataset summary", data, text)


def fig6a_order_vehicle_ratio(scale: float = 1.0, seed: int = 0) -> FigureResult:
    """Fig. 6(a): order-to-vehicle ratio per 1-hour timeslot and city."""
    series = {}
    for profile in (CITY_B, CITY_C, CITY_A):
        scenario = generate_scenario(profile.scaled(scale), seed=seed)
        series[profile.name] = order_vehicle_ratio_by_slot(scenario)
    text = format_series(series, "slot", list(range(24)),
                         title="Fig 6(a) — orders per vehicle by timeslot")
    return FigureResult("Fig 6(a)", "Order/vehicle ratio by timeslot", {"series": series}, text)


def fig4a_percentile_ranks(setting: ExperimentSetting | None = None,
                           max_windows: int = 4) -> FigureResult:
    """Fig. 4(a): percentile rank of the vehicle-to-order distance in KM matchings.

    For the first few accumulation windows of a City-B-like workload, orders
    are ranked for each vehicle by network distance from the vehicle to the
    restaurant; the percentile rank of the order actually assigned by the
    Kuhn–Munkres matching is recorded.  The paper observes that ~95% of
    assignments fall below the 10th percentile, which motivates the
    sparsified FoodGraph.
    """
    setting = setting or ExperimentSetting(profile=CITY_B, scale=0.12,
                                           start_hour=12, end_hour=13)
    scenario, oracle = materialize(setting)
    cost_model = CostModel(oracle)
    policy = KMPolicy(cost_model)
    delta = setting.resolved_delta()
    start = setting.start_hour * SECONDS_PER_HOUR
    vehicles = scenario.fresh_vehicles()
    percentiles: list[float] = []
    window_start = start
    for _ in range(max_windows):
        window_end = window_start + delta
        orders = scenario.orders_between(window_start, window_end)
        if orders:
            assignments = policy.assign(orders, vehicles, window_end)
            if assignments:
                # Assigned vehicles x order restaurants is a cross product;
                # one block query replaces a point query per pair.
                restaurant_nodes = [order.restaurant_node for order in orders]
                matrix = oracle.distance_matrix(
                    [a.vehicle.node for a in assignments], restaurant_nodes,
                    window_end)
                for row, assignment in zip(matrix, assignments, strict=True):
                    target = assignment.orders[0]
                    distances = sorted(row.tolist())
                    assigned_distance = float(
                        row[restaurant_nodes.index(target.restaurant_node)])
                    rank = sum(1 for d in distances if d < assigned_distance)
                    percentiles.append(100.0 * rank / max(1, len(distances) - 1)
                                       if len(distances) > 1 else 0.0)
        window_start = window_end
    percentiles.sort()
    cdf = {}
    for threshold in (5, 10, 20, 30, 50, 75, 100):
        covered = sum(1 for p in percentiles if p <= threshold)
        cdf[threshold] = 100.0 * covered / max(1, len(percentiles))
    rows = [[t, cdf[t]] for t in sorted(cdf)]
    text = format_table(["percentile rank <=", "assignments (%)"], rows,
                        title="Fig 4(a) — CDF of assigned-order percentile ranks")
    return FigureResult("Fig 4(a)", "Percentile ranks of assigned orders",
                        {"percentiles": percentiles, "cdf": cdf}, text)


# --------------------------------------------------------------------------- #
# Fig. 6: headline comparisons
# --------------------------------------------------------------------------- #
def _averaged_metric(setting: ExperimentSetting, spec: PolicySpec, seeds: Sequence[int],
                     metric) -> float:
    """Average a scalar metric of one policy over several workload seeds."""
    values = [metric(run_setting(setting.with_seed(seed), spec)) for seed in seeds]
    return sum(values) / len(values)


def fig6b_vs_reyes(settings: Mapping[str, ExperimentSetting] | None = None,
                   seeds: Sequence[int] = (0, 1)) -> FigureResult:
    """Fig. 6(b): XDT of FoodMatch vs the Reyes et al. baseline per city.

    Results are averaged over ``seeds`` independent synthetic days, the
    analogue of the paper's 6-fold cross-validation over real days.
    """
    if settings is None:
        settings = default_settings()
        # GrubHub is already tiny (Table II); it is simulated at full scale
        # with its whole fleet and over most of the service day, as in the
        # paper (its low order volume otherwise leaves too little signal).
        settings["GrubHub"] = ExperimentSetting(profile=GRUBHUB, scale=1.0,
                                                start_hour=11, end_hour=22)
    data: dict[str, dict[str, float]] = {}

    def objective(result):
        return result.xdt_hours_per_day(include_rejection_penalty=True)

    for city, setting in settings.items():
        data[city] = {
            "foodmatch": _averaged_metric(setting, PolicySpec.of("foodmatch"), seeds, objective),
            "reyes": _averaged_metric(setting, PolicySpec.of("reyes"), seeds, objective),
        }
    rows = [[city, values["foodmatch"], values["reyes"],
             values["reyes"] / values["foodmatch"] if values["foodmatch"] else float("inf")]
            for city, values in data.items()]
    text = format_table(["city", "FoodMatch XDT(h/day)", "Reyes XDT(h/day)", "ratio"],
                        rows, title="Fig 6(b) — FoodMatch vs Reyes")
    return FigureResult("Fig 6(b)", "XDT vs Reyes", {"xdt": data}, text)


def fig6cde_vs_greedy(settings: Mapping[str, ExperimentSetting] | None = None,
                      seeds: Sequence[int] = (0, 1)) -> FigureResult:
    """Fig. 6(c)-(e): XDT, orders/km and waiting time, FoodMatch vs Greedy.

    Results are averaged over ``seeds`` independent synthetic days.
    """
    settings = settings or default_settings()
    data: dict[str, dict[str, dict[str, float]]] = {}
    metric_fns = {
        "xdt_hours": lambda r: r.xdt_hours_per_day(),
        "orders_per_km": lambda r: r.orders_per_km(),
        "waiting_hours": lambda r: r.waiting_hours_per_day(),
    }
    for city, setting in settings.items():
        data[city] = {}
        for name in ("foodmatch", "greedy"):
            spec = PolicySpec.of(name)
            data[city][name] = {metric: _averaged_metric(setting, spec, seeds, fn)
                                for metric, fn in metric_fns.items()}
    rows = []
    for city, values in data.items():
        fm, gr = values["foodmatch"], values["greedy"]
        rows.append([city, fm["xdt_hours"], gr["xdt_hours"], fm["orders_per_km"],
                     gr["orders_per_km"], fm["waiting_hours"], gr["waiting_hours"]])
    text = format_table(
        ["city", "FM XDT", "Greedy XDT", "FM O/Km", "Greedy O/Km", "FM WT", "Greedy WT"],
        rows, title="Fig 6(c-e) — FoodMatch vs Greedy")
    return FigureResult("Fig 6(c-e)", "FoodMatch vs Greedy", {"metrics": data}, text)


def fig6fgh_scalability(settings: Mapping[str, ExperimentSetting] | None = None,
                        peak_slots: Sequence[int] = (12, 13, 19, 20, 21),
                        budget_seconds: float = 0.25) -> FigureResult:
    """Fig. 6(f)-(h): overflown windows (all / peak slots) and running time.

    The paper counts a window as overflown when assignment takes longer than
    the 3-minute window itself.  A workload scaled down by two orders of
    magnitude can never overflow 3 minutes in absolute terms, so the
    reproduction compares decision times against ``budget_seconds`` — a
    proportionally reduced real-time budget — while also reporting the raw
    running times whose ordering (Greedy slowest, FoodMatch fastest at scale)
    is the figure's headline observation.
    """
    settings = settings or default_settings(scale=0.3)
    policies = [PolicySpec.of("greedy"), PolicySpec.of("km"), PolicySpec.of("foodmatch")]
    data: dict[str, dict[str, dict[str, float]]] = {}
    for city, setting in settings.items():
        results = run_policy_comparison(setting, policies)
        data[city] = {name: {
            "overflow_all_pct": result.overflow_percentage(budget=budget_seconds),
            "overflow_peak_pct": result.overflow_percentage(slots=peak_slots,
                                                            budget=budget_seconds),
            "mean_decision_seconds": result.mean_decision_seconds(),
            "total_decision_seconds": result.total_decision_seconds(),
        } for name, result in results.items()}
    rows = []
    for city, values in data.items():
        rows.extend([city, name, metrics["overflow_all_pct"],
                     metrics["overflow_peak_pct"], metrics["mean_decision_seconds"]]
                    for name, metrics in values.items())
    text = format_table(["city", "policy", "overflow all %", "overflow peak %",
                         "mean decision (s)"], rows,
                        title=f"Fig 6(f-h) — scalability (budget {budget_seconds}s)")
    return FigureResult("Fig 6(f-h)", "Overflown windows and running time",
                        {"metrics": data, "budget_seconds": budget_seconds}, text)


def fig6h_single_window_scaling(order_counts: Sequence[int] = (20, 40, 80),
                                num_vehicles: int = 300,
                                profile: CityProfile | None = None,
                                seed: int = 0) -> FigureResult:
    """Fig. 6(h) companion: per-window decision time as the window grows.

    The asymptotic claim of the scalability figures — Greedy is the slowest
    strategy and FoodMatch the fastest because the sparsified FoodGraph
    avoids the quadratic construction — only materialises when a window
    contains enough orders and vehicles for the quadratic term to dominate.
    A full-day simulation at laptop scale never reaches that regime, so this
    companion experiment times a *single* assignment call of each policy on
    synthetic windows of growing size at a fixed peak order/vehicle ratio.
    """
    import time as _time

    profile = profile or CITY_B
    scenario, oracle = materialize(ExperimentSetting(
        profile=profile, scale=1.0, start_hour=12, end_hour=14, seed=seed))
    cost_model = CostModel(oracle)
    now = 13 * SECONDS_PER_HOUR
    all_orders = [o for o in scenario.orders if o.placed_at < now]
    vehicles = scenario.fresh_vehicles()[:num_vehicles]
    series: dict[str, list[float]] = {"greedy": [], "km": [], "foodmatch": []}
    queries: dict[str, list[int]] = {"greedy": [], "km": [], "foodmatch": []}
    from repro.experiments.runner import build_policy

    for count in order_counts:
        window_orders = all_orders[:count]
        for name in ("greedy", "km", "foodmatch"):
            policy = build_policy(name, cost_model)
            queries_before = oracle.query_count
            start = _time.perf_counter()
            policy.assign(window_orders, vehicles, now)
            series[name].append(_time.perf_counter() - start)
            queries[name].append(oracle.query_count - queries_before)
    text = format_series(series, "orders in window", list(order_counts),
                         title=f"Fig 6(h) — single-window decision time, {num_vehicles} vehicles")
    text += "\n" + format_series(
        {name: [float(q) for q in values] for name, values in queries.items()},
        "orders in window", list(order_counts),
        title="Fig 6(h) companion — shortest-path queries per window (machine-independent work)")
    return FigureResult("Fig 6(h)", "Single-window decision-time scaling",
                        {"order_counts": list(order_counts), "series": series,
                         "queries": queries}, text)


def fig6ijk_improvement_by_slot(setting: ExperimentSetting | None = None,
                                ) -> FigureResult:
    """Fig. 6(i)-(k): improvement of FoodMatch over KM per timeslot.

    The default setting simulates the late-morning-to-afternoon ramp under
    peak-load fleet scarcity so that the per-slot series shows the
    improvement growing with the accumulated order volume (the analogue of
    the lunch/dinner peaks of the paper's Fig. 6(i)).
    """
    setting = setting or ExperimentSetting(profile=CITY_B, scale=0.1,
                                           start_hour=11, end_hour=15,
                                           vehicle_fraction=0.4)
    results = run_policy_comparison(
        setting, [PolicySpec.of("foodmatch"), PolicySpec.of("km")])
    fm, km = results["foodmatch"], results["km"]
    slots = sorted(set(fm.xdt_by_slot()) | set(km.xdt_by_slot()))
    xdt_improvement = {}
    for slot in slots:
        base = km.xdt_by_slot().get(slot, 0.0)
        cand = fm.xdt_by_slot().get(slot, 0.0)
        xdt_improvement[slot] = improvement_percent(base, cand)
    okm_improvement = improvement_percent(km.orders_per_km(), fm.orders_per_km(),
                                          higher_is_better=True)
    wt_improvement = improvement_percent(km.waiting_hours_per_day(),
                                         fm.waiting_hours_per_day())
    rows = [[slot, xdt_improvement[slot]] for slot in slots]
    text = format_table(["slot", "XDT improvement %"], rows,
                        title="Fig 6(i-k) — improvement of FoodMatch over KM by slot")
    text += (f"\noverall O/Km improvement: {okm_improvement:.2f}%"
             f"\noverall WT improvement: {wt_improvement:.2f}%")
    return FigureResult("Fig 6(i-k)", "Improvement over KM by timeslot",
                        {"xdt_improvement_by_slot": xdt_improvement,
                         "okm_improvement": okm_improvement,
                         "wt_improvement": wt_improvement}, text)


# --------------------------------------------------------------------------- #
# Fig. 7: ablation and fleet-size sweep
# --------------------------------------------------------------------------- #
def fig7a_ablation(settings: Mapping[str, ExperimentSetting] | None = None,
                   sparsification_k: int = 5) -> FigureResult:
    """Fig. 7(a): layered optimisations (B&R, +BFS, +Angular) vs vanilla KM.

    The BFS and angular layers are evaluated with an explicit per-vehicle
    degree bound ``sparsification_k`` so that sparsification actually binds
    on the scaled-down workloads (in the paper the bound of roughly 200 times
    the order/vehicle ratio is far smaller than the number of batches in a
    peak window, so it always binds).

    The reproduced figure reports, per layer, the XDT improvement over
    vanilla KM and the reduction in mean per-window decision time.  At
    reproduction scale the quality gain comes almost entirely from batching
    and reshuffling (matching the paper's observation that batching has the
    highest impact); the BFS and angular layers mainly buy decision time —
    their small additional XDT gain in the paper relies on a fleet density
    that a laptop-scale instance cannot reach (see EXPERIMENTS.md).
    """
    settings = settings or default_settings()
    seeds = (0, 1)
    layers = [PolicySpec.of("foodmatch-br"),
              PolicySpec.of("foodmatch-br-bfs", k=sparsification_k),
              PolicySpec.of("foodmatch-br-bfs-a", k=sparsification_k)]
    layer_labels = ["B&R", "B&R+BFS", "B&R+BFS+A"]
    data: dict[str, dict[str, float]] = {}

    def xdt(result):
        return result.xdt_hours_per_day()

    for city, setting in settings.items():
        base_xdt = _averaged_metric(setting, PolicySpec.of("km"), seeds, xdt)
        data[city] = {}
        for label, spec in zip(layer_labels, layers, strict=True):
            layer_xdt = _averaged_metric(setting, spec, seeds, xdt)
            data[city][label] = improvement_percent(base_xdt, layer_xdt)
    rows = [[city] + [values[label] for label in layer_labels]
            for city, values in data.items()]
    text = format_table(["city", "B&R %", "B&R+BFS %", "B&R+BFS+A %"], rows,
                        title="Fig 7(a) — XDT improvement over KM by optimisation layer")
    return FigureResult("Fig 7(a)", "Optimisation ablation", {"improvement": data}, text)


def fig7bcde_vehicle_sweep(setting: ExperimentSetting | None = None,
                           fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
                           ) -> FigureResult:
    """Fig. 7(b)-(e): effect of fleet size on XDT, O/Km, WT and rejections."""
    setting = setting or ExperimentSetting(profile=CITY_B, scale=0.12,
                                           start_hour=12, end_hour=13)
    sweep = sweep_vehicles(setting, PolicySpec.of("foodmatch"), fractions)
    series = {
        "xdt_hours": sweep.series("xdt_hours_per_day"),
        "orders_per_km": sweep.series("orders_per_km"),
        "waiting_hours": sweep.series("waiting_hours_per_day"),
        "rejection_pct": [100.0 * v for v in sweep.series("rejection_rate")],
    }
    text = format_series(series, "fleet fraction", list(fractions),
                         title="Fig 7(b-e) — fleet-size sweep")
    return FigureResult("Fig 7(b-e)", "Vehicle availability sweep",
                        {"fractions": list(fractions), "series": series}, text)


# --------------------------------------------------------------------------- #
# Fig. 8 and Fig. 9: parameter sensitivity
# --------------------------------------------------------------------------- #
def fig8abc_eta_sweep(setting: ExperimentSetting | None = None,
                      etas: Sequence[float] = (30.0, 60.0, 90.0, 120.0, 150.0),
                      ) -> FigureResult:
    """Fig. 8(a)-(c): effect of the batching threshold η."""
    setting = setting or ExperimentSetting(profile=CITY_B, scale=0.12,
                                           start_hour=12, end_hour=13)
    sweep = sweep_eta(setting, etas)
    series = {
        "xdt_hours": sweep.series("xdt_hours_per_day"),
        "orders_per_km": sweep.series("orders_per_km"),
        "waiting_hours": sweep.series("waiting_hours_per_day"),
    }
    text = format_series(series, "eta (s)", list(etas), title="Fig 8(a-c) — η sweep")
    return FigureResult("Fig 8(a-c)", "Batching threshold sweep",
                        {"etas": list(etas), "series": series}, text)


def fig8defg_delta_sweep(setting: ExperimentSetting | None = None,
                         deltas: Sequence[float] = (60.0, 120.0, 180.0, 240.0),
                         ) -> FigureResult:
    """Fig. 8(d)-(g): effect of the accumulation window Δ."""
    setting = setting or ExperimentSetting(profile=CITY_B, scale=0.12,
                                           start_hour=12, end_hour=13)
    sweep = sweep_delta(setting, PolicySpec.of("foodmatch"), deltas)
    series = {
        "xdt_hours": sweep.series("xdt_hours_per_day"),
        "orders_per_km": sweep.series("orders_per_km"),
        "waiting_hours": sweep.series("waiting_hours_per_day"),
        "mean_decision_seconds": sweep.series("mean_decision_seconds"),
    }
    text = format_series(series, "delta (s)", list(deltas), title="Fig 8(d-g) — Δ sweep")
    return FigureResult("Fig 8(d-g)", "Accumulation window sweep",
                        {"deltas": list(deltas), "series": series}, text)


def fig8hijk_k_sweep(setting: ExperimentSetting | None = None,
                     ks: Sequence[int] = (2, 4, 8, 16, 32)) -> FigureResult:
    """Fig. 8(h)-(k): effect of the per-vehicle degree bound k."""
    setting = setting or ExperimentSetting(profile=CITY_B, scale=0.12,
                                           start_hour=12, end_hour=13)
    sweep = sweep_k(setting, ks)
    series = {
        "xdt_hours": sweep.series("xdt_hours_per_day"),
        "orders_per_km": sweep.series("orders_per_km"),
        "waiting_hours": sweep.series("waiting_hours_per_day"),
        "mean_decision_seconds": sweep.series("mean_decision_seconds"),
    }
    text = format_series(series, "k", list(ks), title="Fig 8(h-k) — k sweep")
    return FigureResult("Fig 8(h-k)", "FoodGraph degree-bound sweep",
                        {"ks": list(ks), "series": series}, text)


def fig9_gamma_sweep(setting: ExperimentSetting | None = None,
                     gammas: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
                     rejection_fractions: Sequence[float] = (0.1, 0.2, 0.3),
                     include_rejection_panel: bool = True,
                     sparsification_k: int = 3) -> FigureResult:
    """Fig. 9(a)-(d): effect of the angular-distance weight γ.

    γ only influences the exploration order of the sparsified FoodGraph, so
    the sweep fixes a binding per-vehicle degree bound ``sparsification_k``
    (see :func:`fig7a_ablation` for why the bound must be set explicitly at
    reproduction scale).
    """
    setting = setting or ExperimentSetting(profile=CITY_B, scale=0.12,
                                           start_hour=12, end_hour=13)
    base_options = {"k": sparsification_k}
    sweep = sweep_gamma(setting, gammas, base_options=base_options)
    series = {
        "xdt_hours": sweep.series("xdt_hours_per_day"),
        "orders_per_km": sweep.series("orders_per_km"),
        "waiting_hours": sweep.series("waiting_hours_per_day"),
    }
    text = format_series(series, "gamma", list(gammas), title="Fig 9(a-c) — γ sweep")
    data: dict[str, object] = {"gammas": list(gammas), "series": series}
    if include_rejection_panel:
        rejection = sweep_gamma_rejections(setting, gammas=(0.1, 0.5, 0.9),
                                           fractions=rejection_fractions,
                                           base_options=base_options)
        rejection_series = {f"gamma={g}": [100.0 * v for v in res.series("rejection_rate")]
                            for g, res in rejection.items()}
        data["rejection_by_fleet"] = rejection_series
        text += "\n" + format_series(rejection_series, "fleet fraction",
                                     list(rejection_fractions),
                                     title="Fig 9(d) — rejection rate vs fleet size")
    return FigureResult("Fig 9", "Angular-distance weight sweep", data, text)


# --------------------------------------------------------------------------- #
# robustness under dynamic traffic (beyond the paper's figures)
# --------------------------------------------------------------------------- #
def traffic_robustness(setting: ExperimentSetting | None = None,
                       policies: Sequence[str] = ("foodmatch", "greedy"),
                       intensities: Sequence[str] = ("none", "light", "heavy"),
                       ) -> FigureResult:
    """Robustness under incidents: policy quality vs traffic-event intensity.

    Replays the same lunch-peak workload with increasingly severe dynamic
    traffic (incidents, road closures, zonal rush hours, weather — see
    :mod:`repro.traffic`) and reports how each policy's delivery quality
    degrades.  The paper motivates dispatch on *dynamic* road networks; this
    sweep quantifies the cost of that dynamism on the reproduction.
    """
    setting = setting or ExperimentSetting(profile=CITY_A, scale=0.3,
                                           start_hour=12, end_hour=13,
                                           vehicle_fraction=0.6)
    data: dict[str, object] = {"intensities": list(intensities)}
    series: dict[str, list[float]] = {}
    for policy in policies:
        sweep = sweep_traffic(setting, PolicySpec.of(policy),
                              intensities=intensities)
        series[f"{policy} xdt_hours"] = sweep.series("xdt_hours_per_day")
        series[f"{policy} rejections"] = [100.0 * v
                                          for v in sweep.series("rejection_rate")]
    text = format_series(series, "traffic", list(intensities),
                         title="Traffic robustness — quality vs event intensity")
    data["series"] = series
    return FigureResult("Traffic", "Robustness under dynamic-traffic events",
                        data, text)


def event_density(setting: ExperimentSetting | None = None,
                  policy: str = "foodmatch",
                  densities: Sequence[float] = (0.0, 1.0, 3.0, 6.0),
                  ) -> FigureResult:
    """Quality vs traffic-event density, window-quantized vs continuous.

    Replays the same lunch-peak workload while sweeping the traffic event
    generator's rate (events per simulated hour) and resolving those events
    two ways: quantized to accumulation-window boundaries (the historical
    engine) and at their exact timestamps through the event clock
    (:mod:`repro.sim.clock`).  The gap between the two curves is the cost of
    pretending mid-window dynamics wait for the boundary — the motivation
    for the continuous-time event core.

    The default setting runs a long window (Δ = 300 s): window mode's
    quantization error grows with Δ, so the divergence is visible at
    reproduction scale (under CityA's default 180 s window most events land
    close enough to a boundary for the two curves to coincide).
    """
    setting = setting or ExperimentSetting(profile=CITY_A, scale=0.3,
                                           start_hour=12, end_hour=13,
                                           vehicle_fraction=0.6, delta=300.0)
    data: dict[str, object] = {"densities": list(densities), "policy": policy}
    series: dict[str, list[float]] = {}
    for resolution in ("window", "continuous"):
        sweep = sweep_event_density(setting, PolicySpec.of(policy),
                                    densities=densities, resolution=resolution)
        series[f"{resolution} xdt_hours"] = sweep.series("xdt_hours_per_day")
        series[f"{resolution} rejections"] = [
            100.0 * v for v in sweep.series("rejection_rate")]
    text = format_series(series, "events/hour",
                         [f"{density:g}" for density in densities],
                         title=f"Event density — {policy} quality vs sub-window "
                               "traffic dynamics")
    data["series"] = series
    return FigureResult("EventDensity",
                        "Quality vs traffic-event density (window vs "
                        "continuous resolution)", data, text)


def fleet_robustness(setting: ExperimentSetting | None = None,
                     policies: Sequence[str] = ("foodmatch", "greedy"),
                     modes: Sequence[str] = ("none", "shifts", "full"),
                     ) -> FigureResult:
    """Robustness under supply dynamics: policy quality vs fleet realism.

    Replays the same lunch-peak workload with increasingly realistic driver
    lifecycles (shift schedules with breaks; plus surge onboarding, zonal
    drains, stochastic offer rejection, kitchen delays and hot-spot
    repositioning — see :mod:`repro.fleet`) and reports how each policy's
    delivery quality degrades, alongside the volume of driver declines and
    forced handoffs the dynamics injected.  This is the supply-side twin of
    :func:`traffic_robustness`.
    """
    setting = setting or ExperimentSetting(profile=CITY_A, scale=0.3,
                                           start_hour=12, end_hour=13,
                                           vehicle_fraction=0.6)
    data: dict[str, object] = {"modes": list(modes)}
    series: dict[str, list[float]] = {}
    for policy in policies:
        sweep = sweep_fleet(setting, PolicySpec.of(policy), modes=modes)
        series[f"{policy} xdt_hours"] = sweep.series("xdt_hours_per_day")
        series[f"{policy} rejections"] = [100.0 * v
                                          for v in sweep.series("rejection_rate")]
        series[f"{policy} declines"] = sweep.series("driver_declines")
        series[f"{policy} handoffs"] = sweep.series("fleet_handoffs")
    text = format_series(series, "fleet", list(modes),
                         title="Fleet robustness — quality vs driver-lifecycle realism")
    data["series"] = series
    return FigureResult("Fleet", "Robustness under driver-lifecycle dynamics",
                        data, text)


def degradation_ladder(setting: ExperimentSetting | None = None,
                       policy: str = "foodmatch",
                       rungs: Sequence[tuple[str, str]] = DEGRADATION_RUNGS,
                       ) -> FigureResult:
    """Quality across the backend ladder: what each demotion rung costs.

    Replays the same lunch-peak workload with the matching and path ladders
    pinned one rung further down each time (exact ``scipy``/``hub_labels``
    first, cheapest ``greedy_approx``/``bounded_hop_approx`` last) and
    reports delivery quality per rung alongside the resilience layer's own
    quality accounting — the greedy matching's shadow-sampled objective
    delta against the exact solve, and the approximate path estimator's
    mean stretch.  This is the price list the degradation controller shops
    from when a latency budget forces it down the ladder.
    """
    setting = setting or ExperimentSetting(profile=CITY_A, scale=0.3,
                                           start_hour=12, end_hour=13,
                                           vehicle_fraction=0.6)
    labels = [f"{matching}+{path}" for matching, path in rungs]
    data: dict[str, object] = {"rungs": labels, "policy": policy}
    sweep = sweep_degradation(setting, PolicySpec.of(policy), rungs=rungs)
    series: dict[str, list[float]] = {
        f"{policy} xdt_hours": sweep.series("xdt_hours_per_day"),
        f"{policy} rejections": [100.0 * v
                                 for v in sweep.series("rejection_rate")],
    }
    quality_delta = []
    path_stretch = []
    for value in sweep.values:
        resilience = sweep.results[value].resilience or {}
        quality = resilience.get("quality", {})
        quality_delta.append(quality.get("matching_delta_pct", 0.0))
        path_stretch.append(quality.get("path_mean_stretch", 1.0))
    series["matching delta %"] = quality_delta
    series["path stretch"] = path_stretch
    text = format_series(series, "rung", labels,
                         title="Degradation ladder — quality per backend rung")
    data["series"] = series
    return FigureResult("Degradation",
                        "Quality across the backend degradation ladder",
                        data, text)


__all__ = [
    "FigureResult",
    "default_settings",
    "table2_dataset_summary",
    "fig4a_percentile_ranks",
    "fig6a_order_vehicle_ratio",
    "fig6b_vs_reyes",
    "fig6cde_vs_greedy",
    "fig6fgh_scalability",
    "fig6h_single_window_scaling",
    "fig6ijk_improvement_by_slot",
    "fig7a_ablation",
    "fig7bcde_vehicle_sweep",
    "fig8abc_eta_sweep",
    "fig8defg_delta_sweep",
    "fig8hijk_k_sweep",
    "fig9_gamma_sweep",
    "traffic_robustness",
    "event_density",
    "fleet_robustness",
    "degradation_ladder",
]
