"""Build and run experiment settings: scenario + policy + simulator.

The runner translates an :class:`ExperimentSetting` — city profile, scale,
simulated hours, accumulation window, fleet fraction — plus a
:class:`PolicySpec` into a finished
:class:`~repro.sim.metrics.SimulationResult`.  Scenario construction and the
distance oracle are cached per setting so that comparing several policies on
the same workload (the typical experiment) pays the setup cost once.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Sequence

from repro.core.foodmatch import FoodMatchConfig, FoodMatchPolicy
from repro.core.greedy import GreedyPolicy
from repro.core.km_baseline import KMPolicy
from repro.core.policy import AssignmentPolicy
from repro.core.reyes import ReyesPolicy
from repro.network.distance_oracle import DistanceOracle
from repro.network.graph import SECONDS_PER_HOUR
from repro.obs.log import get_logger
from repro.orders.costs import CostModel
from repro.resilience.manager import build_resilience
from repro.sim.engine import SimulationConfig, simulate
from repro.sim.metrics import SimulationResult
from repro.workload.city import CityProfile
from repro.workload.generator import Scenario, generate_scenario

_log = get_logger("experiments.runner")


@dataclass(frozen=True)
class PolicySpec:
    """A named policy plus its constructor keyword arguments."""

    name: str
    options: tuple[tuple[str, object], ...] = ()

    @classmethod
    def of(cls, name: str, **options) -> PolicySpec:
        return cls(name, tuple(sorted(options.items())))

    def options_dict(self) -> dict[str, object]:
        return dict(self.options)


@dataclass(frozen=True)
class ExperimentSetting:
    """Everything needed to materialise one simulated day.

    Attributes
    ----------
    profile:
        City profile (or its name, resolved against ``CITY_PROFILES``).
    scale:
        Workload scale factor applied to the profile (orders, vehicles,
        restaurants).  Benchmarks use small scales so the full harness runs
        in minutes.
    start_hour, end_hour:
        Simulated portion of the day.  The defaults cover the lunch peak,
        which is where the paper's per-slot figures show the interesting
        behaviour.
    delta:
        Accumulation window Δ in seconds; ``None`` uses the profile default.
    vehicle_fraction:
        Fraction of the (scaled) fleet made available (Fig. 7 sweeps this).
    seed:
        Workload seed; experiments average over several seeds.
    traffic:
        Dynamic-traffic intensity (``"none"``, ``"light"``, ``"heavy"`` or
        ``"severe"`` — which fully severs half its closures), or a numeric
        events-per-hour density (the ``event_density`` sweep's knob);
        non-``"none"`` settings generate an event timeline the simulator
        replays through a :class:`~repro.traffic.TrafficController`.
    fleet:
        Driver-lifecycle mode (``"none"``, ``"shifts"`` or ``"full"``);
        non-``"none"`` settings generate a fleet plan (shift schedules,
        supply events, behaviour model) the simulator replays through a
        :class:`~repro.fleet.FleetController`.  ``"none"`` is bit-for-bit
        the static always-online fleet of earlier revisions.
    repair_fraction:
        Optional override of
        :attr:`DistanceOracle.repair_fraction
        <repro.network.distance_oracle.DistanceOracle.repair_fraction>` for
        this setting's cached oracle — the fraction of hub labels that may
        be incrementally repaired before a traffic update falls back to a
        full index rebuild.  Long heavy-traffic sweeps raise it to keep the
        shared oracle on the scoped-repair path.
    event_resolution:
        ``"window"`` (default) applies traffic/fleet events at window
        boundaries only; ``"continuous"`` drains them at their exact
        timestamps through the event clock (:mod:`repro.sim.clock`).
    matching_backend, path_backend:
        Pin the resilience ladders' starting rung (``None`` = top rung,
        plain un-laddered kernels when every resilience knob is unset) —
        see :mod:`repro.resilience`.
    latency_budget:
        Per-window decision-latency budget in seconds; enables the
        degradation controller.  ``None`` disables it.
    faults:
        Fault plan for :class:`~repro.resilience.FaultInjector` as JSON
        text or a file path (kept as a string so the setting stays
        hashable and picklable for shard workers).
    """

    profile: CityProfile
    scale: float = 0.25
    start_hour: int = 12
    end_hour: int = 14
    delta: float | None = None
    vehicle_fraction: float = 1.0
    seed: int = 0
    traffic: str | float = "none"
    fleet: str = "none"
    repair_fraction: float | None = None
    event_resolution: str = "window"
    matching_backend: str | None = None
    path_backend: str | None = None
    latency_budget: float | None = None
    faults: str | None = None

    def resolved_delta(self) -> float:
        return self.delta if self.delta is not None else self.profile.accumulation_window

    def with_seed(self, seed: int) -> ExperimentSetting:
        return replace(self, seed=seed)


def available_policies() -> list[str]:
    """Names accepted by :func:`build_policy`."""
    return ["foodmatch", "greedy", "km", "reyes",
            "foodmatch-br", "foodmatch-br-bfs", "foodmatch-br-bfs-a"]


def build_policy(name: str, cost_model: CostModel, **options) -> AssignmentPolicy:
    """Instantiate a policy by name.

    The three ``foodmatch-*`` variants correspond to the ablation layers of
    Fig. 7(a): batching & reshuffling only, plus best-first search, plus
    angular distance (which equals full FoodMatch).
    """
    key = name.lower()
    if key == "greedy":
        return GreedyPolicy(cost_model, **options)
    if key == "km":
        return KMPolicy(cost_model, **options)
    if key == "reyes":
        return ReyesPolicy(cost_model, **options)
    if key == "foodmatch":
        return FoodMatchPolicy(cost_model, FoodMatchConfig(**options))
    if key == "foodmatch-br":
        config = FoodMatchConfig(use_bfs=False, use_angular=False, **options)
        return FoodMatchPolicy(cost_model, config)
    if key == "foodmatch-br-bfs":
        config = FoodMatchConfig(use_angular=False, **options)
        return FoodMatchPolicy(cost_model, config)
    if key == "foodmatch-br-bfs-a":
        return FoodMatchPolicy(cost_model, FoodMatchConfig(**options))
    raise ValueError(f"unknown policy {name!r}; known: {available_policies()}")


# --------------------------------------------------------------------------- #
# scenario / oracle caching
# --------------------------------------------------------------------------- #
_SCENARIO_CACHE: dict[tuple, tuple[Scenario, DistanceOracle]] = {}

#: Profile name -> shared-memory segment name.  Populated inside executor
#: workers (pool initializer) when the driver packed the city networks with
#: :func:`repro.network.shared.pack_network`; :func:`materialize` then
#: attaches the packed CSR and hub-label arrays instead of rebuilding them.
_ATTACH_REGISTRY: dict[str, str] = {}


def _setting_key(setting: ExperimentSetting) -> tuple:
    # Deliberately excludes the run-time knobs (repair_fraction,
    # event_resolution, and the resilience fields) — they change how a run
    # executes, not which scenario/oracle pair it executes against, so
    # settings differing only in those share one cached materialisation.
    return (setting.profile.name, round(setting.scale, 6), setting.start_hour,
            setting.end_hour, round(setting.vehicle_fraction, 6), setting.seed,
            setting.traffic, setting.fleet)


def materialize(setting: ExperimentSetting) -> tuple[Scenario, DistanceOracle]:
    """Build (or fetch from cache) the scenario and distance oracle of a setting.

    When the setting's profile is registered in :data:`_ATTACH_REGISTRY`,
    the road network and hub-label index attach to the driver's packed
    shared-memory block instead of being rebuilt: every distinct setting
    still gets its *own* :class:`AttachedRoadNetwork
    <repro.network.shared.AttachedRoadNetwork>` and
    :class:`~repro.network.hub_labeling.HubLabelIndex` views (traffic
    overrides and label repairs must not leak between cached settings), but
    all of them map the same physical pages, so the heavy arrays exist once
    per machine rather than once per worker.
    """
    key = _setting_key(setting)
    cached = _SCENARIO_CACHE.get(key)
    if cached is not None:
        return cached
    profile = setting.profile.scaled(setting.scale)
    if setting.vehicle_fraction != 1.0:
        reduced = max(1, round(profile.num_vehicles * setting.vehicle_fraction))
        profile = profile.with_vehicles(reduced)
    network = None
    hub_index = None
    shm_name = _ATTACH_REGISTRY.get(setting.profile.name)
    if shm_name is not None:
        from repro.network.shared import attach_network

        network, hub_index = attach_network(shm_name)
        _log.debug("attached shared network %s for profile %s",
                   shm_name, setting.profile.name)
    _log.debug("materialising %s scale=%s hours=%d-%d seed=%d traffic=%s "
               "fleet=%s", setting.profile.name, setting.scale,
               setting.start_hour, setting.end_hour, setting.seed,
               setting.traffic, setting.fleet)
    scenario = generate_scenario(profile, seed=setting.seed,
                                 start_hour=setting.start_hour,
                                 end_hour=setting.end_hour,
                                 traffic=setting.traffic,
                                 fleet=setting.fleet,
                                 network=network)
    oracle = DistanceOracle(scenario.network, hub_index=hub_index)
    _SCENARIO_CACHE[key] = (scenario, oracle)
    return scenario, oracle


def clear_cache() -> None:
    """Drop all cached scenarios (used by tests that tune cache behaviour)."""
    _SCENARIO_CACHE.clear()


# --------------------------------------------------------------------------- #
# running
# --------------------------------------------------------------------------- #
def run_setting(setting: ExperimentSetting, policy_spec: PolicySpec,
                ) -> SimulationResult:
    """Run one policy on one materialised setting and return its result."""
    scenario, oracle = materialize(setting)
    if setting.repair_fraction is not None:
        oracle.repair_fraction = setting.repair_fraction
    else:
        # The oracle is cached and shared; drop any instance override a
        # previous run with an explicit repair_fraction left behind so this
        # run sees the documented class default again.
        oracle.__dict__.pop("repair_fraction", None)
    cost_model = CostModel(oracle)
    policy = build_policy(policy_spec.name, cost_model, **policy_spec.options_dict())
    config = SimulationConfig(
        delta=setting.resolved_delta(),
        start=setting.start_hour * SECONDS_PER_HOUR,
        end=setting.end_hour * SECONDS_PER_HOUR,
        event_resolution=setting.event_resolution,
    )
    resilience = build_resilience(
        matching_backend=setting.matching_backend,
        path_backend=setting.path_backend,
        latency_budget=setting.latency_budget,
        faults=setting.faults,
        seed=setting.seed,
    )
    return simulate(scenario, policy, cost_model, config,
                    resilience=resilience)


def run_averaged(setting: ExperimentSetting, policy_spec: PolicySpec,
                 seeds: Sequence[int],
                 jobs: int | None = None) -> list[SimulationResult]:
    """Run a policy over several workload seeds (cross-validation analogue).

    ``jobs`` fans the seeds out over the process-pool executor
    (:mod:`repro.experiments.executor`); ``None`` uses the session default
    (1 = serial).  Both paths run each seed as an executor cell — which
    resets a previously traffic-mutated cached oracle to its bit-pristine
    state first — so parallel output is bit-identical to serial.
    """
    from repro.experiments.executor import ExperimentCell, run_cells

    cells = [ExperimentCell(setting.with_seed(seed), policy_spec, tag=seed)
             for seed in seeds]
    return [cell_result.require()
            for cell_result in run_cells(cells, jobs=jobs)]


def run_policy_comparison(setting: ExperimentSetting,
                          policy_specs: Sequence[PolicySpec],
                          jobs: int | None = None,
                          ) -> dict[str, SimulationResult]:
    """Run several policies on the *same* workload and return results by name.

    The policies share one cached scenario and distance oracle; before every
    run the oracle's traffic state is reset (overrides cleared through the
    exact repair path, cumulative repair accounting and memoised caches
    dropped) so each policy replays the timeline from the same pristine
    state — including the first one, which would otherwise inherit whatever
    overrides an earlier run of the same cached setting left applied at its
    end of day.  Long heavy-traffic comparisons therefore no longer
    accumulate repairs until they drift into periodic full index rebuilds.

    With ``jobs > 1`` (or a session default set through
    :func:`repro.experiments.executor.set_default_jobs`) the policies fan
    out over worker processes instead; each worker applies the same
    pristine-state reset, so the results are bit-identical to the serial
    loop.
    """
    from repro.experiments.executor import ExperimentCell, resolve_jobs, run_cells

    if resolve_jobs(jobs) > 1:
        cells = [ExperimentCell(setting, spec) for spec in policy_specs]
        return {cell_result.cell.policy.name: cell_result.require()
                for cell_result in run_cells(cells, jobs=jobs)}
    results: dict[str, SimulationResult] = {}
    _, oracle = materialize(setting)
    for spec in policy_specs:
        oracle.reset_traffic_state()
        results[spec.name] = run_setting(setting, spec)
    return results


def improvement_percent(baseline: float, candidate: float, higher_is_better: bool = False,
                        ) -> float:
    """Relative improvement of ``candidate`` over ``baseline`` (Eq. 9)."""
    if baseline == 0:
        return 0.0
    if higher_is_better:
        return 100.0 * (candidate - baseline) / baseline
    return 100.0 * (baseline - candidate) / baseline


__all__ = [
    "PolicySpec",
    "ExperimentSetting",
    "available_policies",
    "build_policy",
    "materialize",
    "clear_cache",
    "run_setting",
    "run_averaged",
    "run_policy_comparison",
    "improvement_percent",
]
