"""Experiment harness reproducing the paper's evaluation (Sec. V).

The harness has three layers:

* :mod:`repro.experiments.runner` — build a scenario, a policy and a
  simulator from names and parameters, and run them (with multi-seed
  averaging standing in for the paper's 6-fold cross-validation).
* :mod:`repro.experiments.sweeps` — parameter sweeps (vehicle count, η, Δ,
  k, γ) over any policy.
* :mod:`repro.experiments.figures` — one function per table/figure of the
  paper, each returning the data series the paper plots and a formatted
  text rendition.

Every comparison, sweep and cross-validation routes its cells through
:mod:`repro.experiments.executor`, the process-pool experiment runner: pass
``jobs=N`` (or set a session default with
:func:`~repro.experiments.executor.set_default_jobs`, which the CLI's
``--jobs`` flag does) to fan independent cells out across worker processes
with bit-identical output.

Every benchmark under ``benchmarks/`` is a thin wrapper around one of the
figure functions; ``EXPERIMENTS.md`` records the measured shapes next to the
paper's reported ones.
"""

from repro.experiments.runner import (
    ExperimentSetting,
    PolicySpec,
    available_policies,
    build_policy,
    run_setting,
    run_policy_comparison,
)
from repro.experiments.sweeps import (
    sweep_delta,
    sweep_eta,
    sweep_event_density,
    sweep_fleet,
    sweep_gamma,
    sweep_k,
    sweep_traffic,
    sweep_vehicles,
)
from repro.experiments.crossval import (
    CrossValidationReport,
    compare_policies_cv,
    cross_validate,
    improvement_with_spread,
)
from repro.experiments.executor import (
    CellFailure,
    CellResult,
    ExperimentCell,
    register_profile,
    result_fingerprint,
    run_cells,
    set_default_jobs,
)
from repro.experiments import figures

__all__ = [
    "CellFailure",
    "CellResult",
    "ExperimentCell",
    "register_profile",
    "result_fingerprint",
    "run_cells",
    "set_default_jobs",
    "CrossValidationReport",
    "cross_validate",
    "compare_policies_cv",
    "improvement_with_spread",
    "ExperimentSetting",
    "PolicySpec",
    "available_policies",
    "build_policy",
    "run_setting",
    "run_policy_comparison",
    "sweep_delta",
    "sweep_eta",
    "sweep_gamma",
    "sweep_k",
    "sweep_traffic",
    "sweep_event_density",
    "sweep_fleet",
    "sweep_vehicles",
    "figures",
]
