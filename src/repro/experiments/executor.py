"""Process-parallel experiment executor.

Everything above the simulation kernels — policy comparisons, parameter
sweeps, cross-validation, the figure drivers — is a grid of independent
*cells*: one ``(ExperimentSetting, PolicySpec)`` pair each.  This module
fans those cells out across worker processes and streams results back,
with three properties the experiment harness depends on:

**Bit-identical to serial.**  A cell's result is a pure function of its
setting and policy spec: scenarios are regenerated deterministically from
the workload seed inside each worker, per-cell child seeds come from the
hierarchical :func:`~repro.seeding.spawn_seed` derivation (process
independent — no ``PYTHONHASHSEED`` exposure), and the shared oracle of a
worker is reset to its pristine pre-traffic state before any cell that
replays a traffic timeline.  ``--jobs 4`` output is therefore equal, order
included, to ``--jobs 1`` — asserted by the golden tests and by the
end-to-end benchmark before any timing runs.

**Cheap network sharing.**  The immutable heavy artifacts (CSR adjacency,
hub-label arrays, generated scenario) are never serialized per cell.
Workers resolve each cell's city profile by *name* against
:data:`PROFILE_REGISTRY` and rebuild the scenario once per distinct setting
through the runner's scenario cache, which lives for the whole life of the
worker process.  Under the default ``fork`` start method, registered
profiles (and any already-materialised scenarios) are inherited from the
parent for free.  For metro-scale cities, ``run_cells(...,
share_networks=True)`` goes further: the driver packs each distinct
network's CSR arrays and hub labels into one
:mod:`multiprocessing.shared_memory` block (:mod:`repro.network.shared`)
and workers attach it read-only, so N workers hold one machine-wide copy
of the heavy arrays no matter how they were spawned or how long they
live.

**Failure isolation.**  A cell that raises reports its traceback in its
:class:`CellResult`; the remaining cells keep running.  Callers that want
fail-fast semantics call :meth:`CellResult.require`.

The CLI exposes this as ``--jobs N`` (default 1 — the serial path), and
:func:`set_default_jobs` lets one flag fan out every routed harness
(`run_policy_comparison`, the sweeps, cross-validation and the figure
drivers) without threading a parameter through each call site.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, fields
from hashlib import sha256
from collections.abc import Callable, Sequence

from repro.experiments.runner import (
    ExperimentSetting,
    PolicySpec,
    materialize,
    run_setting,
)
from repro.network.kernels import kernel_backend_setting, set_kernel_backend
from repro.obs import get_mode, set_mode
from repro.obs.log import get_logger
from repro.obs.trace import merge_traces
from repro.seeding import spawn_seed
from repro.sim.metrics import SimulationResult
from repro.workload.city import CITY_PROFILES, CityProfile

_log = get_logger("experiments.executor")

#: City profiles resolvable by name inside worker processes.  Seeded with
#: the built-in profiles; :func:`register_profile` adds custom ones (the
#: benchmarks register theirs).  Under the ``fork`` start method children
#: inherit every registration made before the pool is created.
PROFILE_REGISTRY: dict[str, CityProfile] = dict(CITY_PROFILES)


def register_profile(profile: CityProfile) -> None:
    """Make a custom city profile resolvable by name in executor workers."""
    PROFILE_REGISTRY[profile.name] = profile


# --------------------------------------------------------------------------- #
# default parallelism
# --------------------------------------------------------------------------- #
_DEFAULT_JOBS = 1


def set_default_jobs(jobs: int) -> None:
    """Set the worker count used when a harness is called without ``jobs``.

    The CLI sets this once from ``--jobs``; every sweep, comparison and
    figure driver routed through :func:`run_cells` then fans out without
    each call site growing its own flag.
    """
    global _DEFAULT_JOBS
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    _DEFAULT_JOBS = jobs


def resolve_jobs(jobs: int | None) -> int:
    """The effective worker count: an explicit value or the session default."""
    if jobs is None:
        return _DEFAULT_JOBS
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    return jobs


# --------------------------------------------------------------------------- #
# cells
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExperimentCell:
    """One unit of experiment work: a setting replayed under a policy.

    ``tag`` is an opaque caller label (the swept parameter value, the fold
    seed, ...) carried through to the :class:`CellResult`; the workers never
    see it.
    """

    setting: ExperimentSetting
    policy: PolicySpec
    tag: object = None


@dataclass
class CellResult:
    """Outcome of one cell: a result, or the traceback that ate it."""

    cell: ExperimentCell
    result: SimulationResult | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def require(self) -> SimulationResult:
        """The result, re-raising the worker-side failure if there is none."""
        if self.error is not None:
            raise CellFailure(
                f"cell ({self.cell.setting.profile.name}, "
                f"{self.cell.policy.name}, seed={self.cell.setting.seed}) "
                f"failed in worker:\n{self.error}")
        assert self.result is not None
        return self.result


class CellFailure(RuntimeError):
    """Raised by :meth:`CellResult.require` for a cell that failed remotely."""


def replicate_cells(setting: ExperimentSetting,
                    policy_specs: Sequence[PolicySpec],
                    replicates: int) -> list[ExperimentCell]:
    """Expand a ``setting x policy x replicate`` grid into cells.

    Replicate workload seeds are spawned hierarchically from the setting's
    base seed (``spawn_seed(seed, "replicate", r)``), so every cell draws an
    independent stream and the same grid expands to the same seeds in every
    process — serial and parallel runs see identical cells.
    """
    if replicates < 1:
        raise ValueError("replicates must be at least 1")
    cells = []
    for spec in policy_specs:
        for replicate in range(replicates):
            seed = spawn_seed(setting.seed, "replicate", replicate)
            cells.append(ExperimentCell(
                setting=setting.with_seed(seed), policy=spec, tag=replicate))
    return cells


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #
#: (cell index, profile name, setting kwargs, policy name, policy options,
#:  observability mode, kernel backend setting)
_CellPayload = tuple[int, str, dict[str, object], str, tuple, str, str]


def _cell_payload(index: int, cell: ExperimentCell) -> _CellPayload:
    setting_kwargs = {f.name: getattr(cell.setting, f.name)
                      for f in fields(ExperimentSetting) if f.name != "profile"}
    # The driver's --obs mode and --kernel-backend setting ride in the
    # payload so workers honour them even under a spawn start method
    # (fork-inherited workers already match).
    return (index, cell.setting.profile.name, setting_kwargs,
            cell.policy.name, cell.policy.options, get_mode(),
            kernel_backend_setting())


def _run_cell(setting: ExperimentSetting, spec: PolicySpec) -> SimulationResult:
    """Run one cell against the process-local scenario cache.

    Workers keep the runner's scenario cache warm across the cells they
    process; a setting that replays a traffic timeline resets the shared
    oracle to its pristine state first, so a cell's result never depends on
    which cells its worker ran before it (the property behind parallel /
    serial bit-identity).
    """
    scenario, oracle = materialize(setting)
    if scenario.traffic:
        oracle.reset_traffic_state()
    return run_setting(setting, spec)


def _shared_worker_init(registry: dict[str, str]) -> None:
    """Pool initializer for shared-memory sweeps.

    Installs the driver's ``profile name -> shared segment`` registry in the
    worker's runner module and evicts any fork-inherited scenario-cache
    entries for those profiles, so the worker's first :func:`materialize`
    of each setting attaches the packed arrays instead of reusing (or
    rebuilding) a private copy.
    """
    from repro.experiments import runner

    runner._ATTACH_REGISTRY.clear()
    runner._ATTACH_REGISTRY.update(registry)
    stale = [key for key in runner._SCENARIO_CACHE if key[0] in registry]
    for key in stale:
        del runner._SCENARIO_CACHE[key]


def _worker_run(payload: _CellPayload) -> tuple[int, SimulationResult | None,
                                                str | None]:
    (index, profile_name, setting_kwargs, policy_name, policy_options,
     obs_mode, kernel_backend) = payload
    try:
        set_mode(obs_mode)
        set_kernel_backend(kernel_backend)
        profile = PROFILE_REGISTRY.get(profile_name)
        if profile is None:
            raise KeyError(
                f"city profile {profile_name!r} is not registered in this "
                f"worker; call executor.register_profile() before the pool "
                f"is created (known: {sorted(PROFILE_REGISTRY)})")
        setting = ExperimentSetting(profile=profile, **setting_kwargs)
        spec = PolicySpec(policy_name, policy_options)
        return index, _run_cell(setting, spec), None
    except Exception:
        return index, None, traceback.format_exc()


# --------------------------------------------------------------------------- #
# driver side
# --------------------------------------------------------------------------- #
#: Progress callback: (finished cell result, cells done, cells total).
ProgressCallback = Callable[[CellResult, int, int], None]


def _log_cell(outcome: CellResult, done: int, total: int) -> None:
    """Structured progress for each finished cell (silent by default)."""
    cell = outcome.cell
    if outcome.ok:
        _log.debug("cell %d/%d done: %s/%s seed=%s", done, total,
                   cell.setting.profile.name, cell.policy.name,
                   cell.setting.seed)
    else:
        _log.warning("cell %d/%d FAILED: %s/%s seed=%s\n%s", done, total,
                     cell.setting.profile.name, cell.policy.name,
                     cell.setting.seed, outcome.error)


def run_cells(cells: Sequence[ExperimentCell], jobs: int | None = None,
              on_result: ProgressCallback | None = None,
              share_networks: bool = False) -> list[CellResult]:
    """Run every cell and return their results in cell order.

    ``jobs=1`` (the default) runs serially in the calling process against
    the shared scenario cache — exactly the pre-executor behaviour.  With
    ``jobs > 1`` cells fan out over a process pool; results stream back as
    workers finish (``on_result`` fires in completion order), and the
    returned list is always in submission order.  Cell failures are
    isolated: the failing cell carries its traceback, the rest of the grid
    is unaffected.

    ``share_networks=True`` packs each distinct city network (CSR arrays
    plus hub labels, which a city profile determines independently of
    scale/seed) into one :mod:`multiprocessing.shared_memory` block before
    the pool starts; workers attach the block read-only instead of
    rebuilding their own copies, so an N-worker metro-scale sweep holds one
    copy of the heavy arrays machine-wide.  Results stay bit-identical —
    attached views answer every query with the same floats as owned ones.
    Ignored on the serial path.  The blocks are unlinked when the pool
    finishes.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    total = len(cells)
    if jobs <= 1 or total <= 1:
        results: list[CellResult] = []
        for done, cell in enumerate(cells, start=1):
            try:
                outcome = CellResult(cell, result=_run_cell(cell.setting, cell.policy))
            except Exception:
                outcome = CellResult(cell, error=traceback.format_exc())
            results.append(outcome)
            _log_cell(outcome, done, total)
            if on_result is not None:
                on_result(outcome, done, total)
        return results

    for cell in cells:
        # Make every profile resolvable inside the workers.  Registrations
        # made here are inherited by fork'd children created below.
        register_profile(cell.setting.profile)
    packs, registry = _pack_shared_networks(cells) if share_networks else ([], {})
    payloads = [_cell_payload(index, cell) for index, cell in enumerate(cells)]
    slots: list[CellResult | None] = [None] * total
    context = _pool_context()
    try:
        with context.Pool(processes=min(jobs, total),
                          initializer=_shared_worker_init if registry else None,
                          initargs=(registry,) if registry else ()) as pool:
            done = 0
            for index, result, error in pool.imap_unordered(_worker_run, payloads):
                outcome = CellResult(cells[index], result=result, error=error)
                slots[index] = outcome
                done += 1
                _log_cell(outcome, done, total)
                if on_result is not None:
                    on_result(outcome, done, total)
    finally:
        for pack in packs:
            pack.dispose()
    assert all(slot is not None for slot in slots)
    return [slot for slot in slots if slot is not None]


def _pack_shared_networks(cells: Sequence[ExperimentCell]):
    """Pack each distinct profile's network (and hub labels) into shared memory.

    Builds the network exactly as a worker's :func:`materialize` would
    (``profile.network_factory()``; hub labels for networks at or above the
    oracle's auto threshold) so attached workers see bit-identical arrays.
    Returns the owner pack handles plus the ``profile name -> segment
    name`` registry for the pool initializer.
    """
    from repro.network.distance_oracle import DistanceOracle
    from repro.network.hub_labeling import HubLabelIndex
    from repro.network.shared import pack_network

    packs = []
    registry: dict[str, str] = {}
    try:
        for cell in cells:
            profile = cell.setting.profile
            if profile.name in registry:
                continue
            network = profile.network_factory()
            index = (HubLabelIndex(network)
                     if network.num_nodes >= DistanceOracle._AUTO_THRESHOLD
                     else None)
            pack = pack_network(network, index)
            packs.append(pack)
            registry[profile.name] = pack.name
    except BaseException:
        for pack in packs:
            pack.dispose()
        raise
    return packs, registry


def pool_context():
    """Prefer ``fork`` (cheap inheritance of registered profiles and any
    already-built scenarios); fall back to the platform default elsewhere.

    Public because the dispatch service's resident shard pool
    (:mod:`repro.service.shards`) spawns its long-lived per-city workers
    through the same context the sweep executor uses.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


#: Backwards-compatible private alias.
_pool_context = pool_context


# --------------------------------------------------------------------------- #
# campaign traces
# --------------------------------------------------------------------------- #
def merge_cell_traces(results: Sequence[CellResult]) -> list[dict]:
    """Merge per-cell span records into one campaign trace (JSONL events).

    Each successful cell that ran under ``--obs trace`` contributed the span
    tree its worker serialized back inside ``SimulationResult.telemetry``;
    this stitches those per-cell trees into a single event stream — a
    ``{"event": "cell", ...}`` marker identifying the (setting, policy) run,
    followed by that cell's spans stamped with the merged cell index.  Span
    ids stay cell-local, so ``(cell, span)`` uniquely keys the campaign
    trace, and :func:`repro.obs.rollup` aggregates it directly.  Cells
    without telemetry (failures, or runs below ``trace`` mode) are skipped.
    """
    traces: list[list[dict]] = []
    cell_meta: list[dict] = []
    for index, outcome in enumerate(results):
        telemetry = outcome.result.telemetry if outcome.ok else None
        if telemetry is None or not telemetry.spans:
            continue
        traces.append(telemetry.spans)
        cell_meta.append({"grid_index": index, **telemetry.header()})
    return merge_traces(traces, cells=cell_meta)


# --------------------------------------------------------------------------- #
# determinism fingerprints
# --------------------------------------------------------------------------- #
def result_fingerprint(result: SimulationResult) -> str:
    """Digest of every deterministic observable of a simulation result.

    Covers per-order outcomes, per-window accounting and per-vehicle
    movement totals — everything except measured wall-clock decision times
    and cache diagnostics, which legitimately vary between runs.  Two runs
    of the same cell are bit-identical exactly when their fingerprints
    match; the golden tests and the end-to-end benchmark compare serial and
    parallel sweeps through this.
    """
    parts: list[str] = [result.policy_name, result.city_name,
                        repr(result.delta), repr(result.simulated_seconds)]
    for order_id in sorted(result.outcomes):
        outcome = result.outcomes[order_id]
        parts.append(repr((order_id, outcome.sdt, outcome.assigned_at,
                           outcome.picked_up_at, outcome.delivered_at,
                           outcome.rejected, outcome.vehicle_id,
                           outcome.reassignments, outcome.wait_seconds,
                           outcome.offer_rejections, outcome.handoffs,
                           outcome.ever_assigned)))
    parts.extend(repr((window.start, window.end, window.num_orders,
                       window.num_vehicles, window.num_assigned_orders,
                       window.num_declined_offers, window.num_handoffs))
                 for window in result.windows)
    parts.extend(repr((vehicle.vehicle_id, vehicle.node,
                       vehicle.distance_travelled_km,
                       tuple(sorted(vehicle.km_by_load.items())),
                       vehicle.waiting_seconds))
                 for vehicle in result.vehicles)
    return sha256("\n".join(parts).encode()).hexdigest()


__all__ = [
    "ExperimentCell",
    "CellResult",
    "CellFailure",
    "PROFILE_REGISTRY",
    "register_profile",
    "set_default_jobs",
    "resolve_jobs",
    "replicate_cells",
    "pool_context",
    "run_cells",
    "merge_cell_traces",
    "result_fingerprint",
]
