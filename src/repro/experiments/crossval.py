"""Multi-day cross-validation, the analogue of the paper's 6-fold protocol.

The paper trains its parameters (edge travel times, preparation-time models)
on five days of data and evaluates on the held-out sixth day, repeating for
every fold.  The synthetic reproduction has no parameters to fit — the
generator *is* the model — so the corresponding protocol is to evaluate each
policy on several independently seeded synthetic days and report mean and
spread per metric, which is what :func:`cross_validate` and
:func:`compare_policies_cv` do.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentSetting, PolicySpec, run_averaged
from repro.sim.metrics import SimulationResult

DEFAULT_METRICS = ("xdt_hours_per_day", "orders_per_km", "waiting_hours_per_day",
                   "rejection_rate", "mean_decision_seconds")


@dataclass
class MetricStats:
    """Mean / standard deviation / extremes of one metric across folds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    values: list[float] = field(default_factory=list)

    @classmethod
    def from_values(cls, values: Sequence[float]) -> MetricStats:
        values = list(values)
        if not values:
            return cls(0.0, 0.0, 0.0, 0.0, [])
        mean = statistics.fmean(values)
        std = statistics.pstdev(values) if len(values) > 1 else 0.0
        return cls(mean, std, min(values), max(values), values)


@dataclass
class CrossValidationReport:
    """Per-metric statistics of one policy across several synthetic days."""

    policy: str
    seeds: list[int]
    metrics: dict[str, MetricStats]
    results: list[SimulationResult] = field(default_factory=list)

    def mean(self, metric: str) -> float:
        return self.metrics[metric].mean

    def as_table(self) -> str:
        rows = [[name, stats.mean, stats.std, stats.minimum, stats.maximum]
                for name, stats in self.metrics.items()]
        return format_table(["metric", "mean", "std", "min", "max"], rows,
                            title=f"{self.policy} over seeds {self.seeds}")


def _report(spec: PolicySpec, seeds: Sequence[int],
            results: list[SimulationResult],
            metrics: Sequence[str]) -> CrossValidationReport:
    summaries = [result.summary() for result in results]
    stats = {metric: MetricStats.from_values([s[metric] for s in summaries])
             for metric in metrics}
    return CrossValidationReport(policy=spec.name, seeds=list(seeds), metrics=stats,
                                 results=results)


def cross_validate(setting: ExperimentSetting, spec: PolicySpec,
                   seeds: Sequence[int] = (0, 1, 2),
                   metrics: Sequence[str] = DEFAULT_METRICS,
                   jobs: int | None = None) -> CrossValidationReport:
    """Evaluate one policy on several independently seeded synthetic days.

    ``jobs`` fans the folds out over the process-pool executor; parallel
    reports are bit-identical to serial ones.
    """
    results = run_averaged(setting, spec, seeds, jobs=jobs)
    return _report(spec, seeds, results, metrics)


def compare_policies_cv(setting: ExperimentSetting, specs: Sequence[PolicySpec],
                        seeds: Sequence[int] = (0, 1, 2),
                        metrics: Sequence[str] = DEFAULT_METRICS,
                        jobs: int | None = None,
                        ) -> dict[str, CrossValidationReport]:
    """Cross-validate several policies on the same set of synthetic days.

    With ``jobs`` above one the *entire* policy-by-seed grid is submitted as
    one batch of cells, so workers stay busy even when policies and folds
    are few.
    """
    from repro.experiments.executor import ExperimentCell, resolve_jobs, run_cells

    if resolve_jobs(jobs) > 1:
        cells = [ExperimentCell(setting.with_seed(seed), spec, tag=(spec.name, seed))
                 for spec in specs for seed in seeds]
        outcomes = run_cells(cells, jobs=jobs)
        by_policy: dict[str, list[SimulationResult]] = {}
        for cell_result in outcomes:
            by_policy.setdefault(cell_result.cell.policy.name, []).append(
                cell_result.require())
        return {spec.name: _report(spec, seeds, by_policy[spec.name], metrics)
                for spec in specs}
    return {spec.name: cross_validate(setting, spec, seeds, metrics) for spec in specs}


def improvement_with_spread(baseline: CrossValidationReport,
                            candidate: CrossValidationReport,
                            metric: str = "xdt_hours_per_day") -> dict[str, float]:
    """Fold-wise relative improvement of ``candidate`` over ``baseline``.

    Both reports must have been produced with the same seeds; the improvement
    is computed per fold and then aggregated, which is how the paper reports
    its 30%-over-Greedy figure.
    """
    if baseline.seeds != candidate.seeds:
        raise ValueError("reports were produced with different seeds")
    base_values = baseline.metrics[metric].values
    cand_values = candidate.metrics[metric].values
    improvements = []
    for base, cand in zip(base_values, cand_values, strict=True):
        if base == 0:
            continue
        improvements.append(100.0 * (base - cand) / base)
    if not improvements:
        return {"mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}
    stats = MetricStats.from_values(improvements)
    return {"mean": stats.mean, "std": stats.std, "min": stats.minimum,
            "max": stats.maximum}


__all__ = [
    "MetricStats",
    "CrossValidationReport",
    "cross_validate",
    "compare_policies_cv",
    "improvement_with_spread",
    "DEFAULT_METRICS",
]
