"""Plain-text rendering of experiment results (tables and series).

The paper presents its evaluation as figures; this reproduction prints the
underlying series as fixed-width text tables so that the benchmark harness
output can be compared side by side with the paper (see ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render a fixed-width table from headers and rows."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    text_rows: list[list[str]] = []
    for row in rows:
        cells = []
        for idx in range(columns):
            value = row[idx] if idx < len(row) else ""
            cell = f"{value:.4f}" if isinstance(value, float) else str(value)
            cells.append(cell)
            widths[idx] = max(widths[idx], len(cell))
        text_rows.append(cells)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    lines.extend("  ".join(cells[i].ljust(widths[i]) for i in range(columns))
                 for cells in text_rows)
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[float]], x_label: str,
                  x_values: Sequence[object], title: str = "") -> str:
    """Render named series sharing one x-axis as a table (one row per x)."""
    headers = [x_label] + list(series.keys())
    rows = []
    for idx, x in enumerate(x_values):
        row = [x]
        for name in series:
            values = series[name]
            row.append(values[idx] if idx < len(values) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_metric_comparison(results: Mapping[str, Mapping[str, float]],
                             metrics: Sequence[str], title: str = "") -> str:
    """Render a policies-by-metrics comparison table."""
    headers = ["policy"] + list(metrics)
    rows = [[name] + [summary.get(metric, float("nan")) for metric in metrics]
            for name, summary in results.items()]
    return format_table(headers, rows, title=title)


def format_cache_report(cache_stats: Mapping[str, Mapping[str, int]],
                        title: str = "distance-oracle cache effectiveness") -> str:
    """Render one run's LRU cache counters (hits, misses, rate, occupancy).

    ``cache_stats`` is :attr:`SimulationResult.cache_stats
    <repro.sim.metrics.SimulationResult.cache_stats>` — the per-run counter
    deltas of the distance oracle's point / path / SSSP caches.  Surfacing
    them next to the quality metrics makes cache effectiveness a first-class
    experiment output instead of something only visible by inspecting a live
    oracle.

    A ``"hub_labels"`` entry (present on the hub-label backend) is not an
    LRU cache — it carries the index footprint — and renders as a summary
    line under the table: label entry count and resident megabytes.
    """
    rows = []
    index_footprint = None
    for name in sorted(cache_stats):
        stats = cache_stats[name]
        if name == "hub_labels":
            index_footprint = stats
            continue
        hits = stats.get("hits", 0)
        misses = stats.get("misses", 0)
        lookups = hits + misses
        # A cache that served no lookups has no meaningful hit rate; render
        # "-" rather than a fake 0.0000 (or a division error).
        rate = f"{hits / lookups:.4f}" if lookups else "-"
        rows.append([name, hits, misses, rate,
                     f"{stats.get('size', 0)}/{stats.get('capacity', 0)}"])
    report = format_table(["cache", "hits", "misses", "hit_rate", "occupancy"],
                          rows, title=title)
    if index_footprint is not None:
        entries = index_footprint.get("entries", 0)
        mbytes = index_footprint.get("bytes", 0) / 1e6
        report += f"\nhub labels: {entries:,} entries, {mbytes:.1f} MB resident"
    return report


def format_telemetry_report(telemetry,
                            title: str = "per-phase latency profile") -> str:
    """Render a run's phase-latency profile (``--obs summary|trace``).

    ``telemetry`` is :attr:`SimulationResult.telemetry
    <repro.sim.metrics.SimulationResult.telemetry>`.  One row per span name,
    most self-time first: invocation count, total and self seconds, p50/p99
    per invocation in milliseconds, and the share of total window wall time
    the phase's self time accounts for (``engine.window`` covers one whole
    accumulation-window iteration, so it is the natural 100% reference; the
    column renders ``-`` when no window span was recorded).
    """
    stats = telemetry.phase_stats
    window = stats.get("engine.window", {})
    window_total = window.get("total_seconds", 0.0)
    rows = []
    for name in sorted(stats, key=lambda n: -stats[n]["self_seconds"]):
        phase = stats[name]
        share = (f"{100.0 * phase['self_seconds'] / window_total:.1f}%"
                 if window_total > 0 else "-")
        rows.append([name, phase["count"],
                     f"{phase['total_seconds']:.4f}",
                     f"{phase['self_seconds']:.4f}",
                     f"{phase['p50'] * 1e3:.3f}",
                     f"{phase['p99'] * 1e3:.3f}",
                     share])
    header = f"{title} — {telemetry.run_id}" if telemetry.run_id else title
    report = format_table(
        ["phase", "count", "total_s", "self_s", "p50_ms", "p99_ms", "%window"],
        rows, title=header)
    queries = telemetry.counters.get("oracle.queries")
    if queries is not None:
        batches = telemetry.counters.get("oracle.batch_queries", 0)
        sssp = telemetry.counters.get("oracle.sssp_runs", 0)
        report += (f"\noracle: {queries:,.0f} distance queries "
                   f"({batches:,.0f} batched calls, {sssp:,.0f} SSSP runs)")
    plans = telemetry.counters.get("cost.route_plans")
    if plans:
        report += f"\ncost model: {plans:,.0f} route plans evaluated"
    resilience = telemetry.meta.get("resilience")
    if resilience is not None:
        report += (
            f"\nladders: matching={resilience.get('matching_rung')} "
            f"path={resilience.get('path_rung')} "
            f"({resilience.get('demotions', 0)} demotions, "
            f"{resilience.get('recoveries', 0)} recoveries)")
        delta = resilience.get("matching_quality_delta_pct") or 0.0
        stretch = resilience.get("path_mean_stretch") or 1.0
        if delta or stretch != 1.0:
            report += (f"\nquality given up: matching {delta:+.2f}% "
                       f"objective, path stretch {stretch:.3f}x")
    backend = telemetry.meta.get("kernel_backend")
    if backend is not None:
        report += f"\ngraph kernels: {backend} backend"
    return report


def format_trace_rollup(report: Mapping[str, Mapping[str, float]],
                        title: str = "trace rollup (self time)") -> str:
    """Render :func:`repro.obs.rollup` output as a self-time table.

    Works on a single run's records or a merged campaign trace; rows are
    sorted by self time descending, so the first row is where the campaign
    actually spent its time.
    """
    rows = [[name, stats["count"],
             f"{stats['total_seconds']:.4f}", f"{stats['self_seconds']:.4f}"]
            for name, stats in sorted(report.items(),
                                      key=lambda kv: -kv[1]["self_seconds"])]
    return format_table(["span", "count", "total_s", "self_s"], rows,
                        title=title)


__all__ = ["format_table", "format_series", "format_metric_comparison",
           "format_cache_report", "format_telemetry_report",
           "format_trace_rollup"]
