"""Plain-text rendering of experiment results (tables and series).

The paper presents its evaluation as figures; this reproduction prints the
underlying series as fixed-width text tables so that the benchmark harness
output can be compared side by side with the paper (see ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render a fixed-width table from headers and rows."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    text_rows: list[list[str]] = []
    for row in rows:
        cells = []
        for idx in range(columns):
            value = row[idx] if idx < len(row) else ""
            cell = f"{value:.4f}" if isinstance(value, float) else str(value)
            cells.append(cell)
            widths[idx] = max(widths[idx], len(cell))
        text_rows.append(cells)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    lines.extend("  ".join(cells[i].ljust(widths[i]) for i in range(columns))
                 for cells in text_rows)
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[float]], x_label: str,
                  x_values: Sequence[object], title: str = "") -> str:
    """Render named series sharing one x-axis as a table (one row per x)."""
    headers = [x_label] + list(series.keys())
    rows = []
    for idx, x in enumerate(x_values):
        row = [x]
        for name in series:
            values = series[name]
            row.append(values[idx] if idx < len(values) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_metric_comparison(results: Mapping[str, Mapping[str, float]],
                             metrics: Sequence[str], title: str = "") -> str:
    """Render a policies-by-metrics comparison table."""
    headers = ["policy"] + list(metrics)
    rows = [[name] + [summary.get(metric, float("nan")) for metric in metrics]
            for name, summary in results.items()]
    return format_table(headers, rows, title=title)


def format_cache_report(cache_stats: Mapping[str, Mapping[str, int]],
                        title: str = "distance-oracle cache effectiveness") -> str:
    """Render one run's LRU cache counters (hits, misses, rate, occupancy).

    ``cache_stats`` is :attr:`SimulationResult.cache_stats
    <repro.sim.metrics.SimulationResult.cache_stats>` — the per-run counter
    deltas of the distance oracle's point / path / SSSP caches.  Surfacing
    them next to the quality metrics makes cache effectiveness a first-class
    experiment output instead of something only visible by inspecting a live
    oracle.

    A ``"hub_labels"`` entry (present on the hub-label backend) is not an
    LRU cache — it carries the index footprint — and renders as a summary
    line under the table: label entry count and resident megabytes.
    """
    rows = []
    index_footprint = None
    for name in sorted(cache_stats):
        stats = cache_stats[name]
        if name == "hub_labels":
            index_footprint = stats
            continue
        hits = stats.get("hits", 0)
        misses = stats.get("misses", 0)
        lookups = hits + misses
        rate = hits / lookups if lookups else 0.0
        rows.append([name, hits, misses, rate,
                     f"{stats.get('size', 0)}/{stats.get('capacity', 0)}"])
    report = format_table(["cache", "hits", "misses", "hit_rate", "occupancy"],
                          rows, title=title)
    if index_footprint is not None:
        entries = index_footprint.get("entries", 0)
        mbytes = index_footprint.get("bytes", 0) / 1e6
        report += f"\nhub labels: {entries:,} entries, {mbytes:.1f} MB resident"
    return report


__all__ = ["format_table", "format_series", "format_metric_comparison",
           "format_cache_report"]
