"""Typed traffic events and the day's event timeline.

The paper's "dynamic road network" is dynamic in two ways: traversal times
follow the hourly congestion profile, *and* the network state itself shifts
during the day — accidents, closed streets, localised rush hours, weather.
The reproduction's base :class:`~repro.network.graph.TimeProfile` only
captures the first kind; this module supplies the second as a timeline of
typed :class:`TrafficEvent` objects that scale the traversal time of a
*scoped* set of edges while active:

``incident``
    A crash or obstruction on a handful of specific edges; strong slowdown.
``closure``
    A road made impassable.  A plain closure keeps a huge-but-finite factor
    (:data:`CLOSURE_FACTOR`), so the graph stays strongly connected and a
    quickest path routes around the closed edge whenever any detour exists.
    A **severed** closure (``factor=math.inf``) removes the edge outright:
    its effective weight becomes infinite, the distance stack repairs around
    the missing edge connectivity-aware (labels of nodes that lost
    reachability shrink to their reachable hubs), pairs split across the cut
    report infinite distance, and vehicles caught behind the cut wait in
    place until the closure lifts.  Only closures may sever.
``rush_hour``
    A zonal slowdown: every edge inside a travel-time ball around a centre
    node slows down (a commercial district at lunch, a stadium letting out).
``weather``
    A wide-area slowdown — modelled as a large zone.

Events combine multiplicatively when they overlap on an edge.  The effective
static weight of an edge while events are active is::

    base_time * static_multiplier * prod(active event factors)

and the network-wide hourly profile still scales everything uniformly on
top, so the distance kernels' "search static weights, scale once" contract
is preserved between event boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterator

from repro.network.graph import RoadNetwork
from repro.network.shortest_path import dijkstra_all

#: The recognised event kinds, in the order used by generators and reports.
EVENT_KINDS = ("incident", "closure", "rush_hour", "weather")

#: Slowdown factor standing in for a full closure.  Large enough that no
#: quickest path keeps a closed edge when any detour exists, finite so the
#: graph stays connected (see module docstring).
CLOSURE_FACTOR = 600.0


@dataclass(frozen=True)
class TrafficEvent:
    """One time-bounded traffic disturbance with an edge or zone scope.

    Exactly one scope must be given: explicit ``edges`` (directed pairs), or
    a zone as ``zone_center`` + ``zone_radius_seconds`` (every edge whose
    endpoints both lie within that static travel time of the centre).
    ``factor`` scales the traversal time of every scoped edge while the
    event is active (``start <= t < end``); closures default it to
    :data:`CLOSURE_FACTOR`.
    """

    event_id: int
    kind: str
    start: float
    end: float
    factor: float | None = None
    edges: tuple[tuple[int, int], ...] = ()
    zone_center: int | None = None
    zone_radius_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown traffic event kind {self.kind!r}; "
                             f"known: {EVENT_KINDS}")
        if not (math.isfinite(self.start) and math.isfinite(self.end)):
            raise ValueError("traffic event start/end must be finite")
        if not self.end > self.start:
            raise ValueError("traffic event must end after it starts")
        if self.factor is None:
            if self.kind != "closure":
                raise ValueError(f"{self.kind} events require an explicit factor")
            object.__setattr__(self, "factor", CLOSURE_FACTOR)
        if not self.factor > 0.0:
            raise ValueError("traffic event factor must be positive")
        if math.isinf(self.factor) and self.kind != "closure":
            raise ValueError("only closure events may sever edges "
                             f"(factor=inf on a {self.kind} event)")
        has_edges = bool(self.edges)
        has_zone = self.zone_center is not None
        if has_edges == has_zone:
            raise ValueError("traffic event needs exactly one scope: "
                             "edges or zone_center")
        if has_zone and not self.zone_radius_seconds > 0.0:
            raise ValueError("zonal events require a positive zone_radius_seconds")
        object.__setattr__(self, "edges",
                           tuple((int(u), int(v)) for u, v in self.edges))

    @property
    def severs(self) -> bool:
        """Whether this event fully severs its edges (infinite weight)."""
        return math.isinf(self.factor)

    def is_active(self, t: float) -> bool:
        """Whether the event is in force at timestamp ``t``."""
        return self.start <= t < self.end

    def scope_edges(self, network: RoadNetwork) -> tuple[tuple[int, int], ...]:
        """The directed edges the event touches on ``network``.

        Explicit edges are filtered to those present in the network (a
        timeline may be replayed against a regenerated or edited network);
        zonal scopes expand to every edge with both endpoints within the
        zone's travel-time radius of the centre.  Zone expansion runs on the
        *pre-traffic* weights (base times and static multipliers, ignoring
        both the hourly profile and any currently applied event overrides),
        so an event's scope is intrinsic to the event — it never depends on
        which other events happen to be in force when it is expanded.
        """
        if self.edges:
            return tuple(edge for edge in self.edges if network.has_edge(*edge))
        if self.zone_center not in network:
            return ()
        reach = dijkstra_all(
            network, self.zone_center, t=0.0,
            weight=lambda u, v: network.base_time(u, v) * network.edge_multiplier(u, v),
            cutoff=self.zone_radius_seconds)
        zone = set(reach)
        return tuple((u, v) for u in zone
                     for v, _ in network.neighbors(u) if v in zone)


@dataclass(frozen=True)
class TrafficTimeline:
    """An immutable day-long schedule of traffic events, sorted by start."""

    events: tuple[TrafficEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events,
                               key=lambda e: (e.start, e.end, e.event_id)))
        object.__setattr__(self, "events", ordered)

    @classmethod
    def empty(cls) -> TrafficTimeline:
        return cls(())

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TrafficEvent]:
        return iter(self.events)

    def active_at(self, t: float) -> list[TrafficEvent]:
        """Events in force at timestamp ``t`` (sorted by start time)."""
        return [event for event in self.events if event.is_active(t)]

    def boundaries(self) -> list[float]:
        """Sorted unique event start/end times (the controller's change points)."""
        times = {event.start for event in self.events}
        times.update(event.end for event in self.events)
        return sorted(times)

    def next_change_after(self, t: float) -> float | None:
        """Earliest boundary strictly after ``t``; ``None`` when the day is done."""
        for boundary in self.boundaries():
            if boundary > t:
                return boundary
        return None


__all__ = ["TrafficEvent", "TrafficTimeline", "EVENT_KINDS", "CLOSURE_FACTOR"]
