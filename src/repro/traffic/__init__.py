"""Dynamic-traffic subsystem: live edge updates with incremental repair.

The source paper dispatches on *dynamic* road networks; this package makes
the reproduction's network genuinely dynamic.  It layers per-edge,
time-varying speed factors over the base hourly congestion profile:

* :mod:`repro.traffic.events` — typed :class:`TrafficEvent` objects
  (incident, road closure, zonal rush hour, weather slowdown) with begin/end
  times and an edge or travel-time-zone scope, collected into an immutable
  :class:`TrafficTimeline`;
* :mod:`repro.traffic.controller` — the :class:`TrafficController` the
  simulator advances at each accumulation-window boundary.  Every event
  boundary becomes a *scoped* invalidation: CSR weights are patched in
  place, the hub-label index is repaired incrementally for the labels the
  mutation can have touched, and only the potentially stale distance-oracle
  cache entries are dropped (a full rebuild remains the correctness
  fallback, and the benchmark baseline).

Workload generation (:func:`repro.workload.generator.generate_traffic_timeline`)
and scenario (de)serialisation (:mod:`repro.workload.io`) understand
timelines, and ``python -m repro simulate --traffic heavy`` runs one from
the command line.
"""

from repro.traffic.controller import TrafficController, TrafficLog
from repro.traffic.events import (
    CLOSURE_FACTOR,
    EVENT_KINDS,
    TrafficEvent,
    TrafficTimeline,
)

__all__ = [
    "TrafficEvent",
    "TrafficTimeline",
    "TrafficController",
    "TrafficLog",
    "EVENT_KINDS",
    "CLOSURE_FACTOR",
]
