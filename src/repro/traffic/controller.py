"""The traffic controller: advances the event timeline over a live oracle.

:class:`TrafficController` is the single writer of the network's dynamic
edge-override layer.  The simulator calls :meth:`TrafficController.advance`
at every accumulation-window boundary; the controller recomputes the set of
events active at the new timestamp, diffs the implied per-edge factors
against what is currently applied, and hands the (usually tiny) change set
to :meth:`DistanceOracle.apply_traffic_updates
<repro.network.distance_oracle.DistanceOracle.apply_traffic_updates>`, which
patches CSR weights in place, repairs the hub-label index incrementally and
evicts only the cache entries the mutation can have staled.

Because :meth:`advance` recomputes the desired state from the timeline each
call (rather than replaying deltas), it is idempotent, tolerant of clock
jumps in either direction, and self-healing when a fresh controller is
attached to a network that still carries overrides from an earlier run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.distance_oracle import DistanceOracle, TrafficRepairStats
from repro.traffic.events import TrafficEvent, TrafficTimeline


@dataclass
class TrafficLog:
    """Cumulative account of what the controller did over a run."""

    advances: int = 0
    changed_edges: int = 0
    repairs: int = 0
    rebuilds: int = 0
    #: edges fully severed (factor=inf) across all updates, and the total
    #: size of the regions those cuts disconnected (0 for slowdown-only runs)
    severed_edges: int = 0
    disconnected_nodes: int = 0
    reports: list[TrafficRepairStats] = field(default_factory=list)

    def record(self, stats: TrafficRepairStats) -> None:
        self.advances += 1
        if stats.strategy == "noop":
            return
        self.changed_edges += stats.mutated_edges
        self.severed_edges += stats.severed_edges
        self.disconnected_nodes += stats.disconnected_nodes
        if stats.strategy == "repair":
            self.repairs += 1
        elif stats.strategy == "rebuild":
            self.rebuilds += 1
        self.reports.append(stats)


class TrafficController:
    """Drives a :class:`TrafficTimeline` against a live distance oracle."""

    def __init__(self, oracle: DistanceOracle, timeline: TrafficTimeline) -> None:
        self._oracle = oracle
        self._timeline = timeline
        # Edge factors this controller believes are applied.  Seeded from the
        # network so a fresh controller attached to a reused network clears
        # (or adopts) residual overrides instead of fighting them.
        self._applied: dict[tuple[int, int], float] = (
            oracle.network.edge_overrides())
        # Keyed by the (frozen, hashable) event itself: event_ids are not
        # validated unique, so they would be an ambiguous cache key.
        self._scope_cache: dict[TrafficEvent, tuple[tuple[int, int], ...]] = {}
        self._time: float | None = None
        self.log = TrafficLog()

    @property
    def oracle(self) -> DistanceOracle:
        return self._oracle

    @property
    def timeline(self) -> TrafficTimeline:
        return self._timeline

    @property
    def time(self) -> float | None:
        """Timestamp of the last :meth:`advance` (``None`` before the first)."""
        return self._time

    def active_events(self, t: float) -> list[TrafficEvent]:
        """Events in force at ``t`` (delegates to the timeline)."""
        return self._timeline.active_at(t)

    def _scope(self, event: TrafficEvent) -> tuple[tuple[int, int], ...]:
        """Memoised edge scope of an event (zone expansion is a Dijkstra)."""
        cached = self._scope_cache.get(event)
        if cached is None:
            cached = event.scope_edges(self._oracle.network)
            self._scope_cache[event] = cached
        return cached

    def desired_overrides(self, t: float) -> dict[tuple[int, int], float]:
        """Per-edge factors implied by the events active at ``t``.

        Overlapping events compose multiplicatively per edge; edges under no
        active event are absent (factor ``1.0``).
        """
        desired: dict[tuple[int, int], float] = {}
        for event in self._timeline.active_at(t):
            for edge in self._scope(event):
                desired[edge] = desired.get(edge, 1.0) * event.factor
        return desired

    def advance(self, now: float) -> TrafficRepairStats:
        """Bring the network's traffic state up to timestamp ``now``.

        Computes the difference between the currently applied overrides and
        the ones the timeline wants at ``now`` and applies it through the
        oracle's scoped-invalidation path.  A window with no event boundary
        inside it is a no-op.
        """
        desired = self.desired_overrides(now)
        changes: dict[tuple[int, int], float] = {}
        for edge, factor in desired.items():
            if self._applied.get(edge, 1.0) != factor:
                changes[edge] = factor
        for edge in self._applied:
            if edge not in desired:
                changes[edge] = 1.0
        stats = self._oracle.apply_traffic_updates(changes)
        self._applied = desired
        self._time = now
        self.log.record(stats)
        return stats


__all__ = ["TrafficController", "TrafficLog"]
