"""The FOODMATCH policy: batching + sparsified matching + angular distance (Sec. IV).

Per accumulation window FoodMatch runs the full pipeline of Fig. 5:

1. cluster the unassigned orders into batches (Alg. 1),
2. build the sparsified FoodGraph with a best-first search from every
   vehicle (Alg. 2), ordering the exploration by the angular-distance blend
   of Eq. 8,
3. solve minimum-weight matching with Kuhn–Munkres, dropping Ω-only matches,
4. leave unmatched batches for the next window (combined with reshuffling,
   which the simulator performs by releasing not-yet-picked-up orders).

Every optimisation can be toggled independently through
:class:`FoodMatchConfig`, which is how the ablation experiment (Fig. 7(a))
builds its B&R / B&R+BFS / B&R+BFS+A variants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from collections.abc import Sequence

from repro.core.batching import BatchingConfig, cluster_orders
from repro.core.foodgraph import (
    DEFAULT_MAX_FIRST_MILE,
    DEFAULT_OMEGA,
    build_full_foodgraph,
    build_sparsified_foodgraph,
    solve_matching,
)
from repro.core.policy import Assignment, AssignmentPolicy
from repro.obs.trace import current_tracer
from repro.orders.costs import CostModel
from repro.orders.order import Order
from repro.orders.vehicle import Vehicle


@dataclass(frozen=True)
class FoodMatchConfig:
    """Tunable parameters and optimisation toggles of FoodMatch.

    Attributes
    ----------
    eta:
        Batching quality cutoff η in seconds (Sec. IV-B2; default 60 s).
    gamma:
        Weighting factor γ between angular distance and travel time (Eq. 8;
        default 0.5).
    k:
        Explicit per-vehicle degree bound in the sparsified FoodGraph.  When
        ``None`` the bound is derived from ``k_ratio_factor`` as
        ``k_ratio_factor * |O(l)| / |V(l)|`` (the paper uses a factor of 200),
        clamped to ``[k_min, number of batches]``.
    k_ratio_factor, k_min:
        See ``k``.
    omega:
        Rejection penalty Ω in seconds (default 7200).
    max_first_mile:
        Feasibility bound on the vehicle-to-first-pickup travel time
        (the 45-minute guarantee; default 2700 s).
    use_batching, use_bfs, use_angular, use_reshuffling:
        Optimisation toggles for the ablation study.  Disabling ``use_bfs``
        builds the full quadratic FoodGraph; disabling ``use_batching``
        matches individual orders.
    max_orders, max_items:
        MAXO and MAXI capacity constants.
    vectorized:
        Run the FoodGraph construction on the array kernels (block
        first-mile checks, CSR angular exploration).  Produces bit-identical
        assignments to the scalar reference path; disabled only by the
        equivalence tests and the end-to-end benchmark's reference mode.
    """

    eta: float = 60.0
    gamma: float = 0.5
    k: int | None = None
    k_ratio_factor: float = 200.0
    k_min: int = 3
    omega: float = DEFAULT_OMEGA
    max_first_mile: float = DEFAULT_MAX_FIRST_MILE
    use_batching: bool = True
    use_bfs: bool = True
    use_angular: bool = True
    use_reshuffling: bool = True
    max_orders: int = 3
    max_items: int = 10
    vectorized: bool = True

    def batching_config(self) -> BatchingConfig:
        return BatchingConfig(eta=self.eta, max_orders=self.max_orders,
                              max_items=self.max_items)

    def variant(self, **changes) -> FoodMatchConfig:
        """Return a modified copy (used by the ablation benchmarks)."""
        return replace(self, **changes)


class FoodMatchPolicy(AssignmentPolicy):
    """The full FOODMATCH pipeline with configurable optimisations."""

    def __init__(self, cost_model: CostModel,
                 config: FoodMatchConfig | None = None) -> None:
        self._cost_model = cost_model
        self.config = config or FoodMatchConfig()
        self.reshuffle = self.config.use_reshuffling
        self.name = self._derive_name()
        # Diagnostics accumulated across windows (ablation / scalability).
        self.total_cost_evaluations = 0
        self.total_nodes_expanded = 0
        self.total_batches_formed = 0

    def _derive_name(self) -> str:
        cfg = self.config
        if cfg.use_batching and cfg.use_bfs and cfg.use_angular and cfg.use_reshuffling:
            return "foodmatch"
        parts = ["km"]
        if cfg.use_batching or cfg.use_reshuffling:
            parts.append("b&r")
        if cfg.use_bfs:
            parts.append("bfs")
        if cfg.use_angular:
            parts.append("angular")
        return "+".join(parts)

    # ------------------------------------------------------------------ #
    def assign(self, orders: Sequence[Order], vehicles: Sequence[Vehicle],
               now: float) -> list[Assignment]:
        candidates = self.eligible_vehicles(vehicles, now)
        if not orders or not candidates:
            return []
        cfg = self.config
        tracer = current_tracer()

        with tracer.span("policy.batching"):
            if cfg.use_batching:
                batches, stats = cluster_orders(orders, self._cost_model, now,
                                                cfg.batching_config())
                self.total_batches_formed += stats.final_batches
            else:
                batches = [self._cost_model.make_batch([order], now)
                           for order in orders]
                self.total_batches_formed += len(batches)

        with tracer.span("policy.foodgraph"):
            if cfg.use_bfs:
                k = self._degree_bound(len(orders), len(candidates), len(batches))
                graph = build_sparsified_foodgraph(
                    batches, candidates, self._cost_model, now, k,
                    omega=cfg.omega, max_first_mile=cfg.max_first_mile,
                    use_angular=cfg.use_angular, gamma=cfg.gamma,
                    vectorized=cfg.vectorized)
            else:
                graph = build_full_foodgraph(batches, candidates,
                                             self._cost_model, now,
                                             omega=cfg.omega,
                                             max_first_mile=cfg.max_first_mile)
        self.total_cost_evaluations += graph.cost_evaluations
        self.total_nodes_expanded += graph.nodes_expanded

        with tracer.span("policy.matching"):
            matches = solve_matching(graph)
        return [Assignment(
            vehicle=candidates[vehicle_idx],
            orders=graph.batches[batch_idx].orders,
            plan=plan,
            weight=weight,
        ) for batch_idx, vehicle_idx, plan, weight in matches]

    # ------------------------------------------------------------------ #
    def _degree_bound(self, num_orders: int, num_vehicles: int, num_batches: int) -> int:
        """The per-vehicle degree bound k of Alg. 2 (Sec. V-B parameterisation)."""
        cfg = self.config
        if cfg.k is not None:
            k = cfg.k
        else:
            ratio = num_orders / max(1, num_vehicles)
            k = int(math.ceil(cfg.k_ratio_factor * ratio))
        return max(cfg.k_min, min(k, max(1, num_batches)))


__all__ = ["FoodMatchConfig", "FoodMatchPolicy"]
