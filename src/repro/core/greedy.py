"""The Greedy baseline (Sec. III of the paper).

Greedy repeatedly picks the unassigned order / vehicle pair with the minimum
marginal cost and commits it, until no feasible pair remains.  It is locally
optimal per decision but, as the paper's Example 5 shows, can be globally
suboptimal — and its cost recomputation per committed pair makes it the
slowest strategy in the scalability experiments (Fig. 6(f)-(h)).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.core.foodgraph import DEFAULT_MAX_FIRST_MILE, DEFAULT_OMEGA
from repro.core.policy import Assignment, AssignmentPolicy
from repro.orders.costs import CostModel
from repro.orders.order import Order
from repro.orders.route_plan import RoutePlan
from repro.orders.vehicle import Vehicle

INFINITY = math.inf


class GreedyPolicy(AssignmentPolicy):
    """Iterative minimum-marginal-cost assignment.

    Parameters
    ----------
    cost_model:
        Shared cost model providing marginal costs.
    omega:
        Rejection penalty Ω; pairs whose marginal cost reaches Ω are treated
        as infeasible.
    max_first_mile:
        Upper bound on the vehicle-to-restaurant travel time (the 45-minute
        delivery guarantee); beyond it a pair is infeasible.
    """

    name = "greedy"
    reshuffle = False

    def __init__(self, cost_model: CostModel, omega: float = DEFAULT_OMEGA,
                 max_first_mile: float = DEFAULT_MAX_FIRST_MILE) -> None:
        self._cost_model = cost_model
        self._omega = omega
        self._max_first_mile = max_first_mile

    def assign(self, orders: Sequence[Order], vehicles: Sequence[Vehicle],
               now: float) -> list[Assignment]:
        pool: dict[int, Order] = {order.order_id: order for order in orders}
        candidates = self.eligible_vehicles(vehicles, now)
        if not pool or not candidates:
            return []

        # Tentative orders committed to each vehicle within this window.  The
        # vehicles themselves are not mutated; marginal costs are evaluated
        # against (existing assignment ∪ tentative set).
        tentative: dict[int, list[Order]] = {v.vehicle_id: [] for v in candidates}
        plans: dict[int, RoutePlan] = {}
        vehicle_by_id: dict[int, Vehicle] = {v.vehicle_id: v for v in candidates}

        # First-mile feasibility is a pure vehicle x restaurant cross product,
        # so it resolves in one vectorised block query instead of a point
        # query per pair; the matrix serves every later refresh round too
        # (first miles do not depend on the tentative sets).
        pool_orders = list(pool.values())
        first_miles = self._cost_model.oracle.distance_matrix(
            [vehicle.node for vehicle in candidates],
            [order.restaurant_node for order in pool_orders], now)
        first_mile_of: dict[tuple[int, int], float] = {}
        for v_idx, vehicle in enumerate(candidates):
            row = first_miles[v_idx]
            for o_idx, order in enumerate(pool_orders):
                first_mile_of[(order.order_id, vehicle.vehicle_id)] = float(row[o_idx])

        # Marginal costs only change for the vehicle chosen in the previous
        # round, so the first round evaluates all pairs and later rounds only
        # refresh that vehicle's column (the recomputation scheme of Sec. III).
        pair_cost: dict[tuple[int, int], tuple[float, RoutePlan | None]] = {}
        for order in pool.values():
            for vehicle in candidates:
                pair_cost[(order.order_id, vehicle.vehicle_id)] = self._pair_cost(
                    order, vehicle, tentative[vehicle.vehicle_id], now,
                    first_mile_of[(order.order_id, vehicle.vehicle_id)])

        while pool:
            best: tuple[float, int, int, RoutePlan] | None = None
            for order in pool.values():
                for vehicle in candidates:
                    cost, plan = pair_cost[(order.order_id, vehicle.vehicle_id)]
                    if plan is None:
                        continue
                    key = (cost, order.order_id, vehicle.vehicle_id)
                    if best is None or key < (best[0], best[1], best[2]):
                        best = (cost, order.order_id, vehicle.vehicle_id, plan)
            if best is None:
                break
            _, order_id, vehicle_id, plan = best
            tentative[vehicle_id].append(pool.pop(order_id))
            plans[vehicle_id] = plan
            chosen = vehicle_by_id[vehicle_id]
            for order in pool.values():
                pair_cost[(order.order_id, vehicle_id)] = self._pair_cost(
                    order, chosen, tentative[vehicle_id], now,
                    first_mile_of[(order.order_id, vehicle_id)])

        assignments: list[Assignment] = []
        for vehicle_id, added in tentative.items():
            if not added:
                continue
            assignments.append(Assignment(
                vehicle=vehicle_by_id[vehicle_id],
                orders=tuple(added),
                plan=plans[vehicle_id],
                weight=plans[vehicle_id].cost,
            ))
        return assignments

    # ------------------------------------------------------------------ #
    def _pair_cost(self, order: Order, vehicle: Vehicle, already_added: list[Order],
                   now: float, first_mile: float | None = None,
                   ) -> tuple[float, RoutePlan | None]:
        """Marginal cost of adding ``order`` on top of the tentative set.

        ``first_mile`` may carry the precomputed vehicle-to-restaurant travel
        time from the batched feasibility matrix; when absent it is queried
        point-to-point.
        """
        prospective = already_added + [order]
        if not vehicle.can_accept(prospective):
            return INFINITY, None
        if first_mile is None:
            first_mile = self._cost_model.oracle.distance(
                vehicle.node, order.restaurant_node, now)
        if first_mile > self._max_first_mile:
            return INFINITY, None
        plan_with = self._cost_model.plan_for_vehicle(vehicle, prospective, now)
        if plan_with.cost == INFINITY:
            return INFINITY, None
        plan_without = self._cost_model.plan_for_vehicle(vehicle, already_added, now)
        marginal = plan_with.cost - plan_without.cost
        if marginal >= self._omega:
            return INFINITY, None
        return marginal, plan_with


__all__ = ["GreedyPolicy"]
