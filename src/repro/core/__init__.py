"""The paper's primary contribution: FoodMatch and the baselines it is compared with.

Contents
--------
* :mod:`repro.core.matching` — minimum-weight perfect matching on bipartite
  graphs via the Kuhn–Munkres (Hungarian) algorithm, implemented from
  scratch and cross-checked against SciPy in the tests.
* :mod:`repro.core.batching` — Alg. 1: batching by iterative clustering of
  the order graph with the monotone AvgCost stopping rule (Thm. 2).
* :mod:`repro.core.angular` — the angular-distance-blended edge weight of
  Eq. 8 used to anticipate vehicle movement.
* :mod:`repro.core.foodgraph` — FoodGraph construction, both the full
  quadratic version and the sparsified best-first-search version (Alg. 2).
* :mod:`repro.core.policy` — the assignment-policy interface shared by the
  simulator and all algorithms.
* :mod:`repro.core.foodmatch` — the full FOODMATCH pipeline with optimisation
  toggles (batching & reshuffling, best-first search, angular distance).
* :mod:`repro.core.greedy`, :mod:`repro.core.km_baseline`,
  :mod:`repro.core.reyes` — the three baselines of the evaluation.
"""

from repro.core.matching import (
    MATCHING_BACKEND,
    hungarian,
    minimum_weight_matching,
    sparse_minimum_weight_matching,
)
from repro.core.batching import BatchingConfig, cluster_orders
from repro.core.angular import vehicle_sensitive_weight
from repro.core.foodgraph import FoodGraph, build_full_foodgraph, build_sparsified_foodgraph
from repro.core.policy import Assignment, AssignmentPolicy
from repro.core.foodmatch import FoodMatchConfig, FoodMatchPolicy
from repro.core.greedy import GreedyPolicy
from repro.core.km_baseline import KMPolicy
from repro.core.reyes import ReyesPolicy

__all__ = [
    "minimum_weight_matching",
    "sparse_minimum_weight_matching",
    "MATCHING_BACKEND",
    "hungarian",
    "BatchingConfig",
    "cluster_orders",
    "vehicle_sensitive_weight",
    "FoodGraph",
    "build_full_foodgraph",
    "build_sparsified_foodgraph",
    "Assignment",
    "AssignmentPolicy",
    "FoodMatchConfig",
    "FoodMatchPolicy",
    "GreedyPolicy",
    "KMPolicy",
    "ReyesPolicy",
]
