"""Batching by iterative clustering of the order graph (Alg. 1, Sec. IV-B).

Orders that can be delivered together without long detours are merged into
batches before matching.  The procedure operates on the *order graph*: every
node is a batch (initially a single order) and the weight of the edge between
two batches is the extra delivery time incurred by serving their union with a
single vehicle (Eq. 5).  At each iteration the minimum-weight edge is merged,
subject to the MAXO / MAXI capacity constraints, until either

* the average batch cost (Eq. 6) exceeds the quality threshold ``eta``, or
* no feasible merge remains.

Theorem 2 of the paper shows the average batch cost is monotonically
non-decreasing under merges, which both guarantees termination and is
property-tested in this repository.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.orders.batch import Batch
from repro.orders.costs import CostModel
from repro.orders.order import Order

INFINITY = math.inf


@dataclass(frozen=True)
class BatchingConfig:
    """Parameters of the iterative clustering procedure.

    Attributes
    ----------
    eta:
        Quality cutoff in seconds: clustering stops when the average batch
        cost exceeds this value (60 s in the paper's default setting).
    max_orders:
        ``MAXO`` — the largest batch size (3 in the paper).
    max_items:
        ``MAXI`` — the largest total item count per batch (10 in the paper).
    max_pair_distance:
        Optional pruning radius in seconds: order-graph edges are only
        created between batches whose first pick-up nodes are within this
        travel time of each other.  ``None`` (default) reproduces the paper's
        complete order graph; experiments on larger instances may set it to
        keep the quadratic edge construction in check.
    """

    eta: float = 60.0
    max_orders: int = 3
    max_items: int = 10
    max_pair_distance: float | None = None


@dataclass
class BatchingStats:
    """Diagnostics of one clustering run (used by tests and ablations)."""

    initial_batches: int = 0
    merges: int = 0
    final_batches: int = 0
    final_avg_cost: float = 0.0
    avg_cost_trace: list[float] = None

    def __post_init__(self) -> None:
        if self.avg_cost_trace is None:
            self.avg_cost_trace = []


def _average_cost(batches: dict[int, Batch]) -> float:
    """``AvgCost`` of Eq. 6: mean internal cost over the current batches."""
    if not batches:
        return 0.0
    return sum(batch.cost for batch in batches.values()) / len(batches)


def _mergeable(left: Batch, right: Batch, config: BatchingConfig) -> bool:
    if left.size + right.size > config.max_orders:
        return False
    return left.items + right.items <= config.max_items


class _StaticGapTable:
    """Static pairwise distances among batch start nodes, block-prefetched.

    Backed by one :meth:`DistanceOracle.static_distance_matrix` call over the
    initial start nodes (the vectorised hub-label block kernel).  The result
    stays in the numpy matrix — only a node-to-row map is materialised in
    Python, so the table is O(unique nodes) dict entries, not O(nodes^2).
    Nodes first seen later (rare — merged batches start at a member's
    restaurant) extend the matrix with one batched row/column query each.
    """

    def __init__(self, cost_model: CostModel, nodes: Sequence[int]) -> None:
        self._oracle = cost_model.oracle
        unique = list(dict.fromkeys(nodes))
        self._row_of: dict[int, int] = {node: i for i, node in enumerate(unique)}
        self._matrix = self._oracle.static_distance_matrix(unique, unique)

    def _extend(self, node: int) -> None:
        known = list(self._row_of)
        row = self._oracle.static_distance_matrix([node], known)
        col = self._oracle.static_distance_matrix(known, [node])
        self._matrix = np.block([[self._matrix, col], [row, [[0.0]]]])
        self._row_of[node] = len(self._row_of)

    def static_distance(self, u: int, v: int) -> float:
        i = self._row_of.get(u)
        if i is None:
            self._extend(u)
            i = self._row_of[u]
        j = self._row_of.get(v)
        if j is None:
            self._extend(v)
            j = self._row_of[v]
        return float(self._matrix[i, j])


def cluster_orders(orders: Sequence[Order], cost_model: CostModel, now: float,
                   config: BatchingConfig | None = None,
                   ) -> tuple[list[Batch], BatchingStats]:
    """Cluster unassigned orders into batches (Alg. 1).

    Parameters
    ----------
    orders:
        The unassigned orders ``O(l)`` of the current accumulation window.
    cost_model:
        Shared cost model; batch and merge costs come from it.
    now:
        Current timestamp (end of the accumulation window).
    config:
        Clustering parameters; defaults to the paper's settings.

    Returns
    -------
    (batches, stats):
        The final batches (covering every input order exactly once) and the
        run diagnostics, including the AvgCost trace whose monotonicity is
        asserted in tests.
    """
    config = config or BatchingConfig()
    stats = BatchingStats()
    batches: dict[int, Batch] = {}
    for idx, order in enumerate(orders):
        batches[idx] = cost_model.make_batch([order], now)
    stats.initial_batches = len(batches)
    stats.avg_cost_trace.append(_average_cost(batches))

    if len(batches) <= 1 or config.max_orders < 2:
        stats.final_batches = len(batches)
        stats.final_avg_cost = _average_cost(batches)
        return list(batches.values()), stats

    counter = itertools.count()
    next_key = len(batches)
    heap: list[tuple[float, int, int, int, Batch]] = []

    gap_table: _StaticGapTable | None = None
    if config.max_pair_distance is not None:
        # The pairwise pick-up-gap checks form a cross product over the batch
        # start nodes; one block query replaces O(batches^2) point queries
        # (merged batches reuse their members' start nodes, so the table
        # rarely grows after this).
        gap_table = _StaticGapTable(
            cost_model, [batch.first_pickup_node for batch in batches.values()])
        multiplier = cost_model.oracle.network.profile.multiplier(now)

    def push_edges(key: int, others: Sequence[int]) -> None:
        """Compute and enqueue order-graph edges from ``key`` to ``others``."""
        batch = batches[key]
        for other_key in others:
            other = batches.get(other_key)
            if other is None or other_key == key:
                continue
            if not _mergeable(batch, other, config):
                continue
            if gap_table is not None:
                gap = gap_table.static_distance(batch.first_pickup_node,
                                                other.first_pickup_node) * multiplier
                if gap > config.max_pair_distance:
                    continue
            weight, merged = cost_model.merge_cost(batch, other, now)
            heapq.heappush(heap, (weight, next(counter), key, other_key, merged))

    keys = list(batches.keys())
    for pos, key in enumerate(keys):
        push_edges(key, keys[pos + 1:])

    while heap:
        if _average_cost(batches) > config.eta:
            break
        weight, _, key_i, key_j, merged = heapq.heappop(heap)
        if key_i not in batches or key_j not in batches:
            continue  # stale edge: one endpoint was merged away earlier
        del batches[key_i]
        del batches[key_j]
        merged_key = next_key
        next_key += 1
        batches[merged_key] = merged
        stats.merges += 1
        stats.avg_cost_trace.append(_average_cost(batches))
        push_edges(merged_key, list(batches.keys()))

    stats.final_batches = len(batches)
    stats.final_avg_cost = _average_cost(batches)
    return list(batches.values()), stats


__all__ = ["BatchingConfig", "BatchingStats", "cluster_orders"]
