"""Minimum-weight bipartite matching via the Kuhn–Munkres algorithm.

FoodMatch solves the order-to-vehicle assignment of every accumulation window
as a minimum-weight perfect matching on the FoodGraph (Sec. IV-A).  This
module implements the Hungarian algorithm with potentials (the rectangular
extension of Bourgeois & Lassalle the paper cites) from scratch:

* :func:`hungarian` — the low-level solver on a dense cost matrix with
  ``rows <= cols``; O(rows^2 * cols).
* :func:`minimum_weight_matching` — the user-facing wrapper: accepts any
  rectangular matrix (lists or numpy), treats ``inf`` entries as forbidden,
  and returns the matched ``(row, col)`` pairs.
* :func:`sparse_minimum_weight_matching` — the sparsified-FoodGraph entry
  point: solves the "missing entries cost Ω" assignment problem on the
  finite-edge subgraph only, never materialising the dense Ω-filled matrix.

Backend selection happens at import time: when SciPy is importable, dense
subproblems are handed to ``scipy.optimize.linear_sum_assignment`` (a C
implementation of the same algorithm); otherwise the in-repo
:func:`hungarian` solves them.  ``MATCHING_BACKEND`` records the choice, and
tests force the fallback by monkeypatching ``_linear_sum_assignment`` to
``None``.  Correctness of the from-scratch solver is still cross-checked
against SciPy in the test suite, including on random matrices via hypothesis.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

try:  # pragma: no cover - exercised via the backend-forcing tests
    from scipy.optimize import linear_sum_assignment as _linear_sum_assignment
except ImportError:  # pragma: no cover
    _linear_sum_assignment = None

#: Which dense assignment backend was selected at import time.
MATCHING_BACKEND = "scipy" if _linear_sum_assignment is not None else "hungarian"

INFINITY = math.inf

# Forbidden (infinite-cost) entries are replaced by this finite sentinel so
# the potentials stay finite; it must dominate any realistic edge weight but
# stay far from float overflow when summed across a matching.
_FORBIDDEN_COST = 1e15


def hungarian(cost: Sequence[Sequence[float]]) -> list[int]:
    """Solve the assignment problem for a dense matrix with ``rows <= cols``.

    Returns ``assignment`` where ``assignment[row] = col``.  Every row is
    assigned (the matching is perfect on the smaller side), which mirrors the
    constraint ``sum x_{o,v} = min(|U1|, |U2|)`` of the paper's formulation.
    """
    n = len(cost)
    if n == 0:
        return []
    m = len(cost[0])
    if n > m:
        raise ValueError("hungarian() requires rows <= cols; transpose first")

    # Potentials and matching arrays use 1-based indexing, the classical
    # formulation of the algorithm.
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    match = [0] * (m + 1)   # match[col] = row currently assigned to col
    way = [0] * (m + 1)

    for row in range(1, n + 1):
        match[0] = row
        col0 = 0
        minv = [INFINITY] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[col0] = True
            row0 = match[col0]
            delta = INFINITY
            col1 = -1
            for col in range(1, m + 1):
                if used[col]:
                    continue
                cur = cost[row0 - 1][col - 1] - u[row0] - v[col]
                if cur < minv[col]:
                    minv[col] = cur
                    way[col] = col0
                if minv[col] < delta:
                    delta = minv[col]
                    col1 = col
            for col in range(m + 1):
                if used[col]:
                    u[match[col]] += delta
                    v[col] -= delta
                else:
                    minv[col] -= delta
            col0 = col1
            if match[col0] == 0:
                break
        while col0:
            col1 = way[col0]
            match[col0] = match[col1]
            col0 = col1

    assignment = [-1] * n
    for col in range(1, m + 1):
        if match[col] > 0:
            assignment[match[col] - 1] = col - 1
    return assignment


def _solve_dense(matrix: list[list[float]]) -> list[tuple[int, int]]:
    """Solve a finite rectangular assignment problem, perfect on the smaller side.

    Dispatches to SciPy's ``linear_sum_assignment`` when it was importable,
    otherwise to the in-repo :func:`hungarian` (transposing as required).
    Returns ``(row, col)`` pairs.
    """
    if not matrix or not matrix[0]:
        return []
    if _linear_sum_assignment is not None:
        row_ind, col_ind = _linear_sum_assignment(np.asarray(matrix, dtype=np.float64))
        return list(zip(row_ind.tolist(), col_ind.tolist(), strict=True))
    rows, cols = len(matrix), len(matrix[0])
    if rows > cols:
        transposed = [[matrix[r][c] for r in range(rows)] for c in range(cols)]
        return [(row, col) for col, row in enumerate(hungarian(transposed)) if row >= 0]
    return [(row, col) for row, col in enumerate(hungarian(matrix)) if col >= 0]


def minimum_weight_matching(cost: Sequence[Sequence[float]],
                            forbid_infinite: bool = True) -> list[tuple[int, int]]:
    """Minimum-weight matching of a rectangular cost matrix.

    Parameters
    ----------
    cost:
        A ``rows x cols`` matrix (nested sequences or a numpy array).  Entries
        of ``math.inf`` mark forbidden pairs.
    forbid_infinite:
        When true (default), pairs whose cost is infinite are removed from the
        returned matching even if the solver had to use them to complete a
        perfect matching on the smaller side.

    Returns
    -------
    list of ``(row, col)`` pairs, at most ``min(rows, cols)`` of them.
    """
    rows = len(cost)
    if rows == 0:
        return []
    cols = len(cost[0])
    if cols == 0:
        return []
    if any(len(row) != cols for row in cost):
        raise ValueError("cost matrix must be rectangular")

    def clean(value: float) -> float:
        if value == INFINITY:
            return _FORBIDDEN_COST
        if value != value:  # NaN guard
            raise ValueError("cost matrix contains NaN")
        return float(value)

    matrix = [[clean(cost[r][c]) for c in range(cols)] for r in range(rows)]
    pairs: list[tuple[int, int]] = []
    for row, col in _solve_dense(matrix):
        if forbid_infinite and cost[row][col] == INFINITY:
            continue
        pairs.append((row, col))
    return pairs


def sparse_minimum_weight_matching(num_rows: int, num_cols: int,
                                   edges: Mapping[tuple[int, int], float],
                                   omega: float) -> list[tuple[int, int]]:
    """Assignment on a sparse bipartite graph where missing pairs cost Ω.

    Semantically identical to running :func:`minimum_weight_matching` on the
    dense ``num_rows x num_cols`` matrix ``M[r, c] = edges.get((r, c), omega)``
    and keeping only the matched pairs that are explicit edges — but without
    ever materialising that matrix.  The reduction: rows (after transposing
    so rows are the smaller side) that have no finite edge can only ever pay
    Ω, so they are dropped up front; the rest are matched against the columns
    actually touched by finite edges, plus one Ω-cost "opt-out" dummy column
    for every *untouched* real column (capped at the row count — a dummy per
    untouched column mirrors exactly the Ω-assignments the dense formulation
    offers, which matters when an explicit edge costs more than Ω and no
    spare column exists to escape to).  Matching a row to an untouched real
    column and matching it to a dummy both cost exactly Ω, so the reduced
    optimum equals the dense optimum, while the solver only sees an
    ``R' x (C' + min(R', num_cols - C'))`` matrix with ``R' <= number of
    rows with edges`` and ``C' <= number of finite edges``.

    For a sparsified FoodGraph with per-vehicle degree bound ``k`` this turns
    the per-window solve from ``O(B^2 V)`` on the Ω-filled matrix into a
    solve on the finite-edge subgraph only.
    """
    if num_rows == 0 or num_cols == 0 or not edges:
        return []
    transposed = num_rows > num_cols
    if transposed:
        num_rows, num_cols = num_cols, num_rows
        edges = {(c, r): w for (r, c), w in edges.items()}

    finite_rows = sorted({r for r, _ in edges})
    finite_cols = sorted({c for _, c in edges})
    row_pos = {r: i for i, r in enumerate(finite_rows)}
    col_pos = {c: j for j, c in enumerate(finite_cols)}
    num_real = len(finite_cols)
    num_dummy = min(len(finite_rows), num_cols - num_real)
    width = num_real + num_dummy
    matrix = [[omega] * width for _ in finite_rows]
    for (r, c), weight in edges.items():
        matrix[row_pos[r]][col_pos[c]] = float(weight)

    pairs: list[tuple[int, int]] = []
    for i, j in _solve_dense(matrix):
        if j >= num_real:
            continue  # opt-out dummy: the row stays unassigned (Ω)
        row, col = finite_rows[i], finite_cols[j]
        if (row, col) not in edges:
            continue
        pairs.append((col, row) if transposed else (row, col))
    return pairs


def matching_cost(cost: Sequence[Sequence[float]],
                  pairs: Sequence[tuple[int, int]]) -> float:
    """Total weight of a matching (helper for tests and diagnostics)."""
    return sum(cost[r][c] for r, c in pairs)


__all__ = [
    "hungarian",
    "minimum_weight_matching",
    "sparse_minimum_weight_matching",
    "matching_cost",
    "MATCHING_BACKEND",
]
