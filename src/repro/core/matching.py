"""Minimum-weight bipartite matching via the Kuhn–Munkres algorithm.

FoodMatch solves the order-to-vehicle assignment of every accumulation window
as a minimum-weight perfect matching on the FoodGraph (Sec. IV-A).  This
module implements the Hungarian algorithm with potentials (the rectangular
extension of Bourgeois & Lassalle the paper cites) from scratch:

* :func:`hungarian` — the low-level solver on a dense cost matrix with
  ``rows <= cols``; O(rows^2 * cols).
* :func:`minimum_weight_matching` — the user-facing wrapper: accepts any
  rectangular matrix (lists or numpy), treats ``inf`` entries as forbidden,
  and returns the matched ``(row, col)`` pairs.

Correctness is cross-checked against ``scipy.optimize.linear_sum_assignment``
in the test suite, including on random matrices via hypothesis.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

INFINITY = math.inf

# Forbidden (infinite-cost) entries are replaced by this finite sentinel so
# the potentials stay finite; it must dominate any realistic edge weight but
# stay far from float overflow when summed across a matching.
_FORBIDDEN_COST = 1e15


def hungarian(cost: Sequence[Sequence[float]]) -> List[int]:
    """Solve the assignment problem for a dense matrix with ``rows <= cols``.

    Returns ``assignment`` where ``assignment[row] = col``.  Every row is
    assigned (the matching is perfect on the smaller side), which mirrors the
    constraint ``sum x_{o,v} = min(|U1|, |U2|)`` of the paper's formulation.
    """
    n = len(cost)
    if n == 0:
        return []
    m = len(cost[0])
    if n > m:
        raise ValueError("hungarian() requires rows <= cols; transpose first")

    # Potentials and matching arrays use 1-based indexing, the classical
    # formulation of the algorithm.
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    match = [0] * (m + 1)   # match[col] = row currently assigned to col
    way = [0] * (m + 1)

    for row in range(1, n + 1):
        match[0] = row
        col0 = 0
        minv = [INFINITY] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[col0] = True
            row0 = match[col0]
            delta = INFINITY
            col1 = -1
            for col in range(1, m + 1):
                if used[col]:
                    continue
                cur = cost[row0 - 1][col - 1] - u[row0] - v[col]
                if cur < minv[col]:
                    minv[col] = cur
                    way[col] = col0
                if minv[col] < delta:
                    delta = minv[col]
                    col1 = col
            for col in range(m + 1):
                if used[col]:
                    u[match[col]] += delta
                    v[col] -= delta
                else:
                    minv[col] -= delta
            col0 = col1
            if match[col0] == 0:
                break
        while col0:
            col1 = way[col0]
            match[col0] = match[col1]
            col0 = col1

    assignment = [-1] * n
    for col in range(1, m + 1):
        if match[col] > 0:
            assignment[match[col] - 1] = col - 1
    return assignment


def minimum_weight_matching(cost: Sequence[Sequence[float]],
                            forbid_infinite: bool = True) -> List[Tuple[int, int]]:
    """Minimum-weight matching of a rectangular cost matrix.

    Parameters
    ----------
    cost:
        A ``rows x cols`` matrix (nested sequences or a numpy array).  Entries
        of ``math.inf`` mark forbidden pairs.
    forbid_infinite:
        When true (default), pairs whose cost is infinite are removed from the
        returned matching even if the solver had to use them to complete a
        perfect matching on the smaller side.

    Returns
    -------
    list of ``(row, col)`` pairs, at most ``min(rows, cols)`` of them.
    """
    rows = len(cost)
    if rows == 0:
        return []
    cols = len(cost[0])
    if cols == 0:
        return []
    if any(len(row) != cols for row in cost):
        raise ValueError("cost matrix must be rectangular")

    def clean(value: float) -> float:
        if value == INFINITY:
            return _FORBIDDEN_COST
        if value != value:  # NaN guard
            raise ValueError("cost matrix contains NaN")
        return float(value)

    transposed = rows > cols
    if transposed:
        matrix = [[clean(cost[r][c]) for r in range(rows)] for c in range(cols)]
    else:
        matrix = [[clean(cost[r][c]) for c in range(cols)] for r in range(rows)]

    assignment = hungarian(matrix)
    pairs: List[Tuple[int, int]] = []
    for small_idx, large_idx in enumerate(assignment):
        if large_idx < 0:
            continue
        row, col = (large_idx, small_idx) if transposed else (small_idx, large_idx)
        if forbid_infinite and cost[row][col] == INFINITY:
            continue
        pairs.append((row, col))
    return pairs


def matching_cost(cost: Sequence[Sequence[float]],
                  pairs: Sequence[Tuple[int, int]]) -> float:
    """Total weight of a matching (helper for tests and diagnostics)."""
    return sum(cost[r][c] for r, c in pairs)


__all__ = ["hungarian", "minimum_weight_matching", "matching_cost"]
