"""Minimum-weight bipartite matching via the Kuhn–Munkres algorithm.

FoodMatch solves the order-to-vehicle assignment of every accumulation window
as a minimum-weight perfect matching on the FoodGraph (Sec. IV-A).  This
module implements the Hungarian algorithm with potentials (the rectangular
extension of Bourgeois & Lassalle the paper cites) from scratch:

* :func:`hungarian` — the low-level solver on a dense cost matrix with
  ``rows <= cols``; O(rows^2 * cols).
* :func:`minimum_weight_matching` — the user-facing wrapper: accepts any
  rectangular matrix (lists or numpy), treats ``inf`` entries as forbidden,
  and returns the matched ``(row, col)`` pairs.
* :func:`sparse_minimum_weight_matching` — the sparsified-FoodGraph entry
  point: solves the "missing entries cost Ω" assignment problem on the
  finite-edge subgraph only, never materialising the dense Ω-filled matrix.

Backend selection happens at import time: when SciPy is importable, dense
subproblems are handed to ``scipy.optimize.linear_sum_assignment`` (a C
implementation of the same algorithm); otherwise the in-repo
:func:`hungarian` solves them.  ``MATCHING_BACKEND`` records the choice, and
tests force the fallback by monkeypatching ``_linear_sum_assignment`` to
``None``.  Correctness of the from-scratch solver is still cross-checked
against SciPy in the test suite, including on random matrices via hypothesis.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

try:  # pragma: no cover - exercised via the backend-forcing tests
    from scipy.optimize import linear_sum_assignment as _linear_sum_assignment
except ImportError:  # pragma: no cover
    _linear_sum_assignment = None

#: Which dense assignment backend was selected at import time.
MATCHING_BACKEND = "scipy" if _linear_sum_assignment is not None else "hungarian"

#: The matching backend ladder, best rung first.  ``scipy`` and ``hungarian``
#: are exact solvers; ``greedy_approx`` trades bounded regret for speed (the
#: degraded rung the latency-budget controller falls to under load).
MATCHING_RUNGS = ("scipy", "hungarian", "greedy_approx")

INFINITY = math.inf


class MatchingError(ValueError):
    """Invalid matching input, naming the offending ``(row, col)`` cell.

    ``row``/``col`` are indices into the *caller's* matrix orientation —
    for FoodGraph solves that is ``(batch, vehicle)``.
    """

    def __init__(self, message: str, row: int | None = None,
                 col: int | None = None):
        super().__init__(message)
        self.row = row
        self.col = col


class MatchingBackendUnavailable(RuntimeError):
    """A specific backend rung was requested but cannot run here."""


def matching_backend_available(name: str) -> bool:
    """Whether the named matching rung can serve calls right now.

    Checked at call time (not import time) so tests that monkeypatch
    ``_linear_sum_assignment`` away see the ladder react immediately.
    """
    if name == "scipy":
        return _linear_sum_assignment is not None
    return name in MATCHING_RUNGS

# Forbidden (infinite-cost) entries are replaced by this finite sentinel so
# the potentials stay finite; it must dominate any realistic edge weight but
# stay far from float overflow when summed across a matching.
_FORBIDDEN_COST = 1e15


def hungarian(cost: Sequence[Sequence[float]]) -> list[int]:
    """Solve the assignment problem for a dense matrix with ``rows <= cols``.

    Returns ``assignment`` where ``assignment[row] = col``.  Every row is
    assigned (the matching is perfect on the smaller side), which mirrors the
    constraint ``sum x_{o,v} = min(|U1|, |U2|)`` of the paper's formulation.
    """
    n = len(cost)
    if n == 0:
        return []
    m = len(cost[0])
    if n > m:
        raise ValueError("hungarian() requires rows <= cols; transpose first")

    # Potentials and matching arrays use 1-based indexing, the classical
    # formulation of the algorithm.
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    match = [0] * (m + 1)   # match[col] = row currently assigned to col
    way = [0] * (m + 1)

    for row in range(1, n + 1):
        match[0] = row
        col0 = 0
        minv = [INFINITY] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[col0] = True
            row0 = match[col0]
            delta = INFINITY
            col1 = -1
            for col in range(1, m + 1):
                if used[col]:
                    continue
                cur = cost[row0 - 1][col - 1] - u[row0] - v[col]
                if cur < minv[col]:
                    minv[col] = cur
                    way[col] = col0
                if minv[col] < delta:
                    delta = minv[col]
                    col1 = col
            for col in range(m + 1):
                if used[col]:
                    u[match[col]] += delta
                    v[col] -= delta
                else:
                    minv[col] -= delta
            col0 = col1
            if match[col0] == 0:
                break
        while col0:
            col1 = way[col0]
            match[col0] = match[col1]
            col0 = col1

    assignment = [-1] * n
    for col in range(1, m + 1):
        if match[col] > 0:
            assignment[match[col] - 1] = col - 1
    return assignment


def greedy_assignment(matrix: Sequence[Sequence[float]]) -> list[tuple[int, int]]:
    """Bounded-regret greedy assignment on a dense finite matrix.

    Takes cells in ascending weight order (ties broken by ``(row, col)`` so
    the result is deterministic), accepting a cell whenever both its row and
    column are still free.  The matching is perfect on the smaller side, built
    in ``O(R*C log(R*C))`` with no augmenting paths — the fast approximate
    rung of :data:`MATCHING_RUNGS`.
    """
    if not matrix or not matrix[0]:
        return []
    rows, cols = len(matrix), len(matrix[0])
    cells = sorted((matrix[r][c], r, c)
                   for r in range(rows) for c in range(cols))
    target = min(rows, cols)
    row_free = [True] * rows
    col_free = [True] * cols
    pairs: list[tuple[int, int]] = []
    for _, r, c in cells:
        if row_free[r] and col_free[c]:
            row_free[r] = False
            col_free[c] = False
            pairs.append((r, c))
            if len(pairs) == target:
                break
    return pairs


def _solve_dense(matrix: list[list[float]],
                 backend: str | None = None) -> list[tuple[int, int]]:
    """Solve a finite rectangular assignment problem, perfect on the smaller side.

    With ``backend=None`` (the default) dispatches to SciPy's
    ``linear_sum_assignment`` when it was importable, otherwise to the in-repo
    :func:`hungarian` (transposing as required).  An explicit ``backend`` pins
    one rung of :data:`MATCHING_RUNGS` and raises
    :class:`MatchingBackendUnavailable` if that rung cannot run.
    Returns ``(row, col)`` pairs.
    """
    if not matrix or not matrix[0]:
        return []
    if backend is not None and backend not in MATCHING_RUNGS:
        raise MatchingBackendUnavailable(f"unknown matching backend {backend!r}")
    if backend == "greedy_approx":
        return greedy_assignment(matrix)
    use_scipy = (_linear_sum_assignment is not None if backend is None
                 else backend == "scipy")
    if use_scipy:
        if _linear_sum_assignment is None:
            raise MatchingBackendUnavailable("scipy backend requested but "
                                             "scipy.optimize is not importable")
        row_ind, col_ind = _linear_sum_assignment(np.asarray(matrix, dtype=np.float64))
        return list(zip(row_ind.tolist(), col_ind.tolist(), strict=True))
    rows, cols = len(matrix), len(matrix[0])
    if rows > cols:
        transposed = [[matrix[r][c] for r in range(rows)] for c in range(cols)]
        return [(row, col) for col, row in enumerate(hungarian(transposed)) if row >= 0]
    return [(row, col) for row, col in enumerate(hungarian(matrix)) if col >= 0]


def minimum_weight_matching(cost: Sequence[Sequence[float]],
                            forbid_infinite: bool = True,
                            backend: str | None = None) -> list[tuple[int, int]]:
    """Minimum-weight matching of a rectangular cost matrix.

    Parameters
    ----------
    cost:
        A ``rows x cols`` matrix (nested sequences or a numpy array).  Entries
        of ``math.inf`` mark forbidden pairs.
    forbid_infinite:
        When true (default), pairs whose cost is infinite are removed from the
        returned matching even if the solver had to use them to complete a
        perfect matching on the smaller side.
    backend:
        ``None`` (auto: scipy if importable, else the in-repo Hungarian) or
        one rung of :data:`MATCHING_RUNGS`.

    Returns
    -------
    list of ``(row, col)`` pairs, at most ``min(rows, cols)`` of them.
    """
    rows = len(cost)
    if rows == 0:
        return []
    cols = len(cost[0])
    if cols == 0:
        return []
    if any(len(row) != cols for row in cost):
        raise ValueError("cost matrix must be rectangular")

    def clean(value: float, row: int, col: int) -> float:
        if value == INFINITY:
            return _FORBIDDEN_COST
        if value != value:  # NaN guard
            raise MatchingError(
                f"cost matrix contains NaN at (row {row}, col {col})",
                row=row, col=col)
        return float(value)

    matrix = [[clean(cost[r][c], r, c) for c in range(cols)] for r in range(rows)]
    pairs: list[tuple[int, int]] = []
    for row, col in _solve_dense(matrix, backend=backend):
        if forbid_infinite and cost[row][col] == INFINITY:
            continue
        pairs.append((row, col))
    return pairs


def _greedy_sparse(edges: Mapping[tuple[int, int], float],
                   omega: float) -> list[tuple[int, int]]:
    """Greedy rung for the sparse formulation: take finite edges in weight
    order while both endpoints are free.  Edges costing Ω or more are never
    taken (the Ω opt-out dominates them), matching the pairs the dense
    formulation would drop anyway.  Runs directly on the edge dict —
    ``O(E log E)`` with no dense reduction at all, which is where the
    degraded rung buys its latency back.

    A single length-2 augmentation pass then rescues rows the greedy order
    stranded (their every column taken by another row that had a free
    alternative).  Each rescue swaps one Ω penalty for two finite edges, so
    on Ω-dominated instances it closes most of the gap to the exact
    objective while staying ``O(U * k^2)`` for ``U`` stranded rows under a
    degree bound ``k`` — no full augmenting-path search.
    """
    row_match: dict[int, int] = {}
    col_match: dict[int, int] = {}
    adjacency: dict[int, list[tuple[float, int]]] = {}
    for weight, r, c in sorted((w, r, c) for (r, c), w in edges.items()):
        if weight >= omega:
            continue
        adjacency.setdefault(r, []).append((weight, c))
        if r in row_match or c in col_match:
            continue
        row_match[r] = c
        col_match[c] = r
    for r in adjacency:
        if r in row_match:
            continue
        best = None  # (delta, c, partner, c2)
        for weight, c in adjacency[r]:
            partner = col_match[c]
            displaced = edges[(partner, c)]
            for weight2, c2 in adjacency.get(partner, ()):
                if c2 in col_match:
                    continue
                # Swap gain vs leaving r unmatched: pay (w + w2), stop
                # paying (displaced + Ω).
                delta = weight + weight2 - displaced - omega
                if delta < 0 and (best is None or delta < best[0]):
                    best = (delta, c, partner, c2)
                break  # adjacency is weight-sorted: first free col is best
        if best is not None:
            _, c, partner, c2 = best
            row_match[partner] = c2
            col_match[c2] = partner
            row_match[r] = c
            col_match[c] = r
    _improve_sparse(edges, omega, row_match, col_match, adjacency)
    return sorted(row_match.items())


#: 2-exchange passes the sparse greedy runs after seeding (see
#: :func:`_improve_sparse`).  Each pass is ``O(k^2)`` over matched pairs;
#: convergence is typically reached in 2-3 passes.
_GREEDY_IMPROVE_PASSES = 8


def _improve_sparse(edges: Mapping[tuple[int, int], float], omega: float,
                    row_match: dict[int, int], col_match: dict[int, int],
                    adjacency: Mapping[int, list[tuple[float, int]]]) -> None:
    """Polish a greedy seed with bounded 2-exchange local search, in place.

    Two moves, applied until a pass finds no improvement (or the pass cap
    hits): *relocate* a row to a cheaper free column, and *swap* the columns
    of two matched rows when the crossed costs are cheaper.  Missing edges
    price at Ω, so a move never fabricates an assignment the dense Ω-filled
    formulation would not offer.  This is what pulls the greedy rung's
    objective from cheapest-first's ~20% gap to within a few percent of the
    exact solvers, while staying ``O(passes * k^2)`` — still far below the
    cubic exact solve it stands in for.
    """
    def cost(r: int, c: int) -> float:
        return edges.get((r, c), omega)

    for _ in range(_GREEDY_IMPROVE_PASSES):
        improved = False
        # Relocate: a matched row moves to a cheaper free column.
        for r, c in list(row_match.items()):
            current = cost(r, c)
            for weight, c2 in adjacency.get(r, ()):
                if weight >= current:
                    break  # weight-sorted: nothing cheaper remains
                if c2 not in col_match:
                    del col_match[c]
                    row_match[r] = c2
                    col_match[c2] = r
                    improved = True
                    break
        # Swap: two matched rows trade columns when the cross is cheaper.
        matched = list(row_match.items())
        for i, (r1, c1) in enumerate(matched):
            for r2, c2 in matched[i + 1:]:
                c1 = row_match[r1]  # may have moved earlier this pass
                c2 = row_match[r2]
                delta = (cost(r1, c2) + cost(r2, c1)
                         - cost(r1, c1) - cost(r2, c2))
                if delta < -1e-12:
                    row_match[r1], row_match[r2] = c2, c1
                    col_match[c1], col_match[c2] = r2, r1
                    improved = True
        if not improved:
            break


def sparse_minimum_weight_matching(num_rows: int, num_cols: int,
                                   edges: Mapping[tuple[int, int], float],
                                   omega: float,
                                   backend: str | None = None) -> list[tuple[int, int]]:
    """Assignment on a sparse bipartite graph where missing pairs cost Ω.

    Semantically identical to running :func:`minimum_weight_matching` on the
    dense ``num_rows x num_cols`` matrix ``M[r, c] = edges.get((r, c), omega)``
    and keeping only the matched pairs that are explicit edges — but without
    ever materialising that matrix.  The reduction: rows (after transposing
    so rows are the smaller side) that have no finite edge can only ever pay
    Ω, so they are dropped up front; the rest are matched against the columns
    actually touched by finite edges, plus one Ω-cost "opt-out" dummy column
    for every *untouched* real column (capped at the row count — a dummy per
    untouched column mirrors exactly the Ω-assignments the dense formulation
    offers, which matters when an explicit edge costs more than Ω and no
    spare column exists to escape to).  Matching a row to an untouched real
    column and matching it to a dummy both cost exactly Ω, so the reduced
    optimum equals the dense optimum, while the solver only sees an
    ``R' x (C' + min(R', num_cols - C'))`` matrix with ``R' <= number of
    rows with edges`` and ``C' <= number of finite edges``.

    For a sparsified FoodGraph with per-vehicle degree bound ``k`` this turns
    the per-window solve from ``O(B^2 V)`` on the Ω-filled matrix into a
    solve on the finite-edge subgraph only.
    """
    if num_rows == 0 or num_cols == 0 or not edges:
        return []
    for (r, c), weight in edges.items():
        if weight != weight:  # NaN guard, before any transpose so the error
            # names the caller's (batch, vehicle) cell, not a flipped one.
            raise MatchingError(
                f"cost matrix contains NaN at (batch {r}, vehicle {c})",
                row=r, col=c)
    if backend == "greedy_approx":
        return _greedy_sparse(edges, omega)
    transposed = num_rows > num_cols
    if transposed:
        num_rows, num_cols = num_cols, num_rows
        edges = {(c, r): w for (r, c), w in edges.items()}

    finite_rows = sorted({r for r, _ in edges})
    finite_cols = sorted({c for _, c in edges})
    row_pos = {r: i for i, r in enumerate(finite_rows)}
    col_pos = {c: j for j, c in enumerate(finite_cols)}
    num_real = len(finite_cols)
    num_dummy = min(len(finite_rows), num_cols - num_real)
    width = num_real + num_dummy
    matrix = [[omega] * width for _ in finite_rows]
    for (r, c), weight in edges.items():
        matrix[row_pos[r]][col_pos[c]] = float(weight)

    pairs: list[tuple[int, int]] = []
    for i, j in _solve_dense(matrix, backend=backend):
        if j >= num_real:
            continue  # opt-out dummy: the row stays unassigned (Ω)
        row, col = finite_rows[i], finite_cols[j]
        if (row, col) not in edges:
            continue
        pairs.append((col, row) if transposed else (row, col))
    return pairs


def matching_cost(cost: Sequence[Sequence[float]],
                  pairs: Sequence[tuple[int, int]]) -> float:
    """Total weight of a matching (helper for tests and diagnostics)."""
    return sum(cost[r][c] for r, c in pairs)


def sparse_matching_objective(num_rows: int, num_cols: int,
                              edges: Mapping[tuple[int, int], float],
                              omega: float,
                              pairs: Sequence[tuple[int, int]]) -> float:
    """Objective value of a sparse matching under the Ω-filled formulation.

    Every one of the ``min(num_rows, num_cols)`` potential assignments that a
    matching leaves unmade pays Ω, so exact and approximate rungs compare on
    the same scale (helper for the resilience quality counters and tests).
    """
    total = sum(edges[pair] for pair in pairs)
    return total + omega * (min(num_rows, num_cols) - len(pairs))


__all__ = [
    "hungarian",
    "greedy_assignment",
    "minimum_weight_matching",
    "sparse_minimum_weight_matching",
    "sparse_matching_objective",
    "matching_cost",
    "matching_backend_available",
    "MatchingError",
    "MatchingBackendUnavailable",
    "MATCHING_BACKEND",
    "MATCHING_RUNGS",
]
