"""Vehicle-sensitive edge weights blending travel time and angular distance (Eq. 8).

Alg. 2 explores the road network outward from every vehicle to find the
batches it could serve.  A vehicle that is already driving somewhere keeps
moving while the FoodGraph is built, so a node that is close *now* but lies
behind the vehicle will be far by the time assignments are made.  The paper
counters this by blending the time-dependent edge weight ``beta(e, t)`` with
the *angular distance* between the vehicle's direction of travel and the
edge's head node::

    alpha(v, e, t) = gamma * adist(v, head(e), t)
                     + (1 - gamma) * beta(e, t) / max_e' beta(e', t)

``gamma`` balances the two terms (0.5 by default).  Idle vehicles have no
direction, so their angular term is zero and exploration order reduces to
plain travel time.

Note on the paper's notation: Eq. 8 of the paper attaches ``(1 - gamma)`` to
the angular term, but the discussion of Fig. 9 ("as gamma increases, a
vehicle would have edges to only those orders that originate from a node in
the same direction as the vehicle's destination") treats ``gamma`` as the
weight of the *angular* term.  The two are inconsistent; this implementation
follows the Fig. 9 semantics — ``gamma`` is the weight of the angular
distance — so that the reproduced sensitivity curves bend in the same
direction as the paper's.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable, Iterator

from repro.network.geometry import angular_distance
from repro.network.graph import RoadNetwork
from repro.orders.vehicle import Vehicle

WeightFunction = Callable[[int, int], float]

INFINITY = math.inf


def vehicle_sensitive_weight(network: RoadNetwork, vehicle: Vehicle, now: float,
                             gamma: float = 0.5) -> WeightFunction:
    """Build the ``alpha(v, e, t)`` edge-weight function for one vehicle.

    The returned callable maps an edge ``(u, u')`` to its blended weight and
    is intended to be passed to
    :class:`~repro.network.shortest_path.BestFirstExplorer`.  Note the
    blended weight only orders the exploration — marginal costs on FoodGraph
    edges are always computed from true travel times.
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must lie in [0, 1]")
    max_beta = network.max_edge_time(now)
    destination = vehicle.next_destination
    vehicle_coord = network.coord(vehicle.node)
    dest_coord = network.coord(destination) if destination is not None else None

    def weight(u: int, u_prime: int) -> float:
        beta = network.edge_time(u, u_prime, now)
        time_term = beta / max_beta if max_beta > 0 else 0.0
        if dest_coord is None:
            angular_term = 0.0
        else:
            angular_term = angular_distance(vehicle_coord, dest_coord,
                                            network.coord(u_prime))
        return gamma * angular_term + (1.0 - gamma) * time_term

    return weight


def travel_time_weight(network: RoadNetwork, now: float) -> WeightFunction:
    """Plain ``beta(e, t)`` weight, used when angular distance is disabled."""
    return lambda u, v: network.edge_time(u, v, now)


def blended_time_terms(network: RoadNetwork, now: float) -> list[float]:
    """Per-CSR-edge normalised travel-time terms ``beta(e, t) / max_e' beta``.

    One vectorised pass over the CSR weight array replaces the two dict
    lookups, slot resolution and division the reference weight closure pays
    per edge relaxation.  The element-wise multiply and divide perform the
    identical IEEE operations in the identical order as the closure
    (``static * multiplier`` then ``/ max_beta``), so every term is
    bit-equal to what :func:`vehicle_sensitive_weight` computes.

    The terms are shared by every vehicle explored in one accumulation
    window (they do not depend on the vehicle), which is why the FoodGraph
    builder computes them once per window and hands them to each
    :class:`VehicleSensitiveExplorer`.
    """
    csr = network.csr()
    max_beta = network.max_edge_time(now)
    if not max_beta > 0:
        return [0.0] * len(csr.weights_list)
    terms = csr.weights * network.profile.multiplier(now)
    terms /= max_beta
    return terms.tolist()


class VehicleSensitiveExplorer:
    """Best-first search under the Eq. 8 blend, on the CSR array adjacency.

    Drop-in equivalent of ``BestFirstExplorer(network, vehicle.node,
    weight=vehicle_sensitive_weight(network, vehicle, now, gamma), t=now)``:
    it yields the identical ``(node, blended_cost)`` sequence (the property
    tests assert this node for node), but avoids the per-relaxation closure
    call, dict adjacency iteration and repeated trigonometry that make the
    reference path the simulation's hottest loop.

    Three observations make this possible:

    * the travel-time term of the blend depends only on the edge, so it is
      precomputed for all edges in one vectorised pass
      (:func:`blended_time_terms`) and shared across vehicles;
    * the angular term depends only on the edge's *head* node (and the
      vehicle), so it is computed at most once per node — lazily, with the
      very same scalar :func:`~repro.network.geometry.angular_distance`
      the reference closure calls, keeping every value bit-identical;
    * the search itself is the plain heap Dijkstra of the CSR kernels, with
      heap entries ordered by ``(distance, node_id)`` exactly like the
      dict-based reference, so tie-breaking matches too.
    """

    def __init__(self, network: RoadNetwork, vehicle: Vehicle, now: float,
                 gamma: float = 0.5,
                 time_terms: list[float] | None = None,
                 coords: list[tuple[float, float]] | None = None) -> None:
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must lie in [0, 1]")
        csr = network.csr()
        self._csr = csr
        self._gamma = gamma
        self._one_minus_gamma = 1.0 - gamma
        self._time_terms = (time_terms if time_terms is not None
                            else blended_time_terms(network, now))
        self._coords = (coords if coords is not None
                        else [network.coord(node) for node in csr.node_ids])
        destination = vehicle.next_destination
        self._vehicle_coord = network.coord(vehicle.node)
        self._dest_coord = (network.coord(destination)
                            if destination is not None else None)
        # Lazily filled per-head-node angular terms (None = not yet computed).
        self._angular: list[float | None] = [None] * csr.num_nodes
        self._visited_count = 0
        src = csr.index_of[vehicle.node]
        self._dist = [INFINITY] * csr.num_nodes
        self._dist[src] = 0.0
        # Entries are (distance, node_id, node_index): comparison falls to the
        # original node id on distance ties, matching the reference heap.
        self._heap: list[tuple[float, int, int]] = [(0.0, vehicle.node, src)]
        self._settled = [False] * csr.num_nodes
        # One generator frame keeps every hot local bound across all the
        # thousands of per-node resumptions of one search.
        self._iterator = self._iterate()

    def __iter__(self) -> Iterator[tuple[int, float]]:
        return self._iterator

    def __next__(self) -> tuple[int, float]:
        """Return the next ``(node, blended_cost)`` pair in ascending order."""
        return next(self._iterator)

    def _iterate(self) -> Iterator[tuple[int, float]]:
        csr = self._csr
        indptr = csr.indptr_list
        indices = csr.indices_list
        node_ids = csr.node_ids
        time_terms = self._time_terms
        angular = self._angular
        dist = self._dist
        settled = self._settled
        heap = self._heap
        gamma = self._gamma
        one_minus_gamma = self._one_minus_gamma
        dest_coord = self._dest_coord
        vehicle_coord = self._vehicle_coord
        coords = self._coords
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            d, node_id, node = pop(heap)
            if settled[node]:
                continue
            settled[node] = True
            self._visited_count += 1
            for j in range(indptr[node], indptr[node + 1]):
                head = indices[j]
                if settled[head]:
                    continue
                term = angular[head]
                if term is None:
                    if dest_coord is None:
                        term = 0.0
                    else:
                        term = angular_distance(vehicle_coord, dest_coord,
                                                coords[head])
                    angular[head] = term
                nd = d + (gamma * term + one_minus_gamma * time_terms[j])
                if nd < dist[head]:
                    dist[head] = nd
                    push(heap, (nd, node_ids[head], head))
            yield node_id, d

    @property
    def visited_count(self) -> int:
        """Number of nodes settled so far (an efficiency statistic)."""
        return self._visited_count


__all__ = ["vehicle_sensitive_weight", "travel_time_weight",
           "blended_time_terms", "VehicleSensitiveExplorer"]
