"""Vehicle-sensitive edge weights blending travel time and angular distance (Eq. 8).

Alg. 2 explores the road network outward from every vehicle to find the
batches it could serve.  A vehicle that is already driving somewhere keeps
moving while the FoodGraph is built, so a node that is close *now* but lies
behind the vehicle will be far by the time assignments are made.  The paper
counters this by blending the time-dependent edge weight ``beta(e, t)`` with
the *angular distance* between the vehicle's direction of travel and the
edge's head node::

    alpha(v, e, t) = gamma * adist(v, head(e), t)
                     + (1 - gamma) * beta(e, t) / max_e' beta(e', t)

``gamma`` balances the two terms (0.5 by default).  Idle vehicles have no
direction, so their angular term is zero and exploration order reduces to
plain travel time.

Note on the paper's notation: Eq. 8 of the paper attaches ``(1 - gamma)`` to
the angular term, but the discussion of Fig. 9 ("as gamma increases, a
vehicle would have edges to only those orders that originate from a node in
the same direction as the vehicle's destination") treats ``gamma`` as the
weight of the *angular* term.  The two are inconsistent; this implementation
follows the Fig. 9 semantics — ``gamma`` is the weight of the angular
distance — so that the reproduced sensitivity curves bend in the same
direction as the paper's.
"""

from __future__ import annotations

from typing import Callable

from repro.network.geometry import angular_distance
from repro.network.graph import RoadNetwork
from repro.orders.vehicle import Vehicle

WeightFunction = Callable[[int, int], float]


def vehicle_sensitive_weight(network: RoadNetwork, vehicle: Vehicle, now: float,
                             gamma: float = 0.5) -> WeightFunction:
    """Build the ``alpha(v, e, t)`` edge-weight function for one vehicle.

    The returned callable maps an edge ``(u, u')`` to its blended weight and
    is intended to be passed to
    :class:`~repro.network.shortest_path.BestFirstExplorer`.  Note the
    blended weight only orders the exploration — marginal costs on FoodGraph
    edges are always computed from true travel times.
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must lie in [0, 1]")
    max_beta = network.max_edge_time(now)
    destination = vehicle.next_destination
    vehicle_coord = network.coord(vehicle.node)
    dest_coord = network.coord(destination) if destination is not None else None

    def weight(u: int, u_prime: int) -> float:
        beta = network.edge_time(u, u_prime, now)
        time_term = beta / max_beta if max_beta > 0 else 0.0
        if dest_coord is None:
            angular_term = 0.0
        else:
            angular_term = angular_distance(vehicle_coord, dest_coord,
                                            network.coord(u_prime))
        return gamma * angular_term + (1.0 - gamma) * time_term

    return weight


def travel_time_weight(network: RoadNetwork, now: float) -> WeightFunction:
    """Plain ``beta(e, t)`` weight, used when angular distance is disabled."""
    return lambda u, v: network.edge_time(u, v, now)


__all__ = ["vehicle_sensitive_weight", "travel_time_weight"]
