"""Vanilla Kuhn–Munkres baseline (Sec. IV-A without the optimisations).

KM frames each accumulation window as a minimum-weight perfect matching
between *individual orders* and vehicles on the full, quadratically built
FoodGraph.  It improves on Greedy by optimising the window globally, but it
cannot batch two orders from the same window onto one vehicle, does not
reshuffle, and pays the full bipartite-construction cost — which is exactly
what the paper's ablation (Fig. 7(a)) and scalability figures isolate.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.foodgraph import (
    DEFAULT_MAX_FIRST_MILE,
    DEFAULT_OMEGA,
    build_full_foodgraph,
    solve_matching,
)
from repro.core.policy import Assignment, AssignmentPolicy
from repro.orders.costs import CostModel
from repro.orders.order import Order
from repro.orders.vehicle import Vehicle


class KMPolicy(AssignmentPolicy):
    """Minimum-weight matching of single orders on the full FoodGraph."""

    name = "km"
    reshuffle = False

    def __init__(self, cost_model: CostModel, omega: float = DEFAULT_OMEGA,
                 max_first_mile: float = DEFAULT_MAX_FIRST_MILE) -> None:
        self._cost_model = cost_model
        self._omega = omega
        self._max_first_mile = max_first_mile

    def assign(self, orders: Sequence[Order], vehicles: Sequence[Vehicle],
               now: float) -> list[Assignment]:
        candidates = self.eligible_vehicles(vehicles, now)
        if not orders or not candidates:
            return []
        batches = [self._cost_model.make_batch([order], now) for order in orders]
        graph = build_full_foodgraph(batches, candidates, self._cost_model, now,
                                     omega=self._omega,
                                     max_first_mile=self._max_first_mile)
        matches = solve_matching(graph)
        return [Assignment(
            vehicle=candidates[vehicle_idx],
            orders=graph.batches[batch_idx].orders,
            plan=plan,
            weight=weight,
        ) for batch_idx, vehicle_idx, plan, weight in matches]


__all__ = ["KMPolicy"]
