"""FoodGraph construction: the bipartite batch/vehicle assignment graph (Sec. IV-A, IV-C).

The FoodGraph has the order batches on one side, the available vehicles on
the other, and edge weights equal to the marginal cost of assigning a batch
to a vehicle (Eq. 7), with the rejection penalty Ω standing in for forbidden
or prohibitively distant pairs.  Two constructions are provided:

* :func:`build_full_foodgraph` — the quadratic construction that computes the
  true marginal cost of every batch-vehicle pair; this is what the vanilla KM
  baseline uses.
* :func:`build_sparsified_foodgraph` — Alg. 2: a best-first search from each
  vehicle over the road network adds true-cost edges only to the ``k``
  closest batch start nodes; everything else is implicitly Ω.  The search
  order can use either plain travel time or the angular-distance blend of
  Eq. 8.

:func:`solve_matching` runs Kuhn–Munkres on the resulting graph and drops
matches that only exist through Ω edges (those orders stay unassigned and
roll into the next accumulation window).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.angular import (
    VehicleSensitiveExplorer,
    blended_time_terms,
    vehicle_sensitive_weight,
)
from repro.core.matching import sparse_minimum_weight_matching
from repro.network.shortest_path import BestFirstExplorer
from repro.resilience.context import current_ladders
from repro.orders.batch import Batch
from repro.orders.costs import CostModel
from repro.orders.route_plan import RoutePlan
from repro.orders.vehicle import Vehicle

INFINITY = math.inf

#: Default rejection penalty Ω: 7200 seconds (2 hours), as in Sec. V-B.
DEFAULT_OMEGA = 7200.0

#: Default bound on the vehicle-to-first-pickup travel time: 45 minutes, the
#: delivery-time guarantee used by Swiggy (Sec. V-B).
DEFAULT_MAX_FIRST_MILE = 2700.0


@dataclass
class FoodGraph:
    """A (possibly sparsified) bipartite assignment graph.

    Edges are stored sparsely: a missing ``(batch_idx, vehicle_idx)`` entry
    means the pair's weight is Ω and no route plan is attached.
    """

    batches: list[Batch]
    vehicles: list[Vehicle]
    omega: float = DEFAULT_OMEGA
    edges: dict[tuple[int, int], tuple[float, RoutePlan]] = field(default_factory=dict)
    #: number of true marginal-cost evaluations performed (efficiency metric)
    cost_evaluations: int = 0
    #: number of road-network nodes expanded by best-first search
    nodes_expanded: int = 0
    #: incrementally maintained per-vehicle finite-edge counts (Alg. 2's
    #: stopping rule reads them every expansion step)
    _degree_counts: dict[int, int] = field(default_factory=dict, repr=False)
    _degree_edge_count: int = field(default=0, repr=False)

    def invalidate_degree_counts(self) -> None:
        """Force a recount on the next degree read.

        Callers that mutate :attr:`edges` directly (instead of through
        :meth:`add_edge`) must call this; the automatic staleness check only
        catches mutations that change the edge count, not length-preserving
        replace-one-key-with-another edits.
        """
        self._degree_edge_count = -1

    def _sync_degree_counts(self) -> None:
        """Rebuild per-vehicle counts if ``edges`` looks externally mutated."""
        if self._degree_edge_count != len(self.edges):
            counts: dict[int, int] = {}
            for (_, v) in self.edges:
                counts[v] = counts.get(v, 0) + 1
            self._degree_counts = counts
            self._degree_edge_count = len(self.edges)

    def add_edge(self, batch_idx: int, vehicle_idx: int, weight: float,
                 plan: RoutePlan) -> None:
        """Insert (or replace) a finite edge, keeping degree counts current."""
        self._sync_degree_counts()
        key = (batch_idx, vehicle_idx)
        if key not in self.edges:
            self._degree_counts[vehicle_idx] = self._degree_counts.get(vehicle_idx, 0) + 1
        self.edges[key] = (weight, plan)
        self._degree_edge_count = len(self.edges)

    def weight(self, batch_idx: int, vehicle_idx: int) -> float:
        """Edge weight, Ω when the pair has no explicit edge."""
        edge = self.edges.get((batch_idx, vehicle_idx))
        return edge[0] if edge is not None else self.omega

    def plan(self, batch_idx: int, vehicle_idx: int) -> RoutePlan | None:
        edge = self.edges.get((batch_idx, vehicle_idx))
        return edge[1] if edge is not None else None

    def cost_matrix(self) -> list[list[float]]:
        """Dense batch-by-vehicle cost matrix (diagnostics / reference solver).

        The production matching path no longer materialises this — see
        :func:`solve_matching` — but tests and the exactness benchmarks still
        compare against the dense formulation.
        """
        return [[self.weight(b, v) for v in range(len(self.vehicles))]
                for b in range(len(self.batches))]

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def vehicle_degree(self, vehicle_idx: int) -> int:
        """Number of finite-weight edges incident to a vehicle (O(1)).

        Counts are maintained by :meth:`add_edge`.  Direct mutation of
        ``edges`` that changes the edge count triggers an automatic recount;
        length-preserving direct edits additionally require
        :meth:`invalidate_degree_counts`.
        """
        self._sync_degree_counts()
        return self._degree_counts.get(vehicle_idx, 0)


def _pair_weight(batch: Batch, vehicle: Vehicle, cost_model: CostModel, now: float,
                 omega: float, max_first_mile: float,
                 first_mile: float | None = None) -> tuple[float, RoutePlan | None]:
    """Marginal cost of a batch-vehicle pair, clamped to Ω where required.

    ``first_mile`` may carry a precomputed vehicle-to-first-pickup travel
    time (the builders batch those checks through the oracle's vectorised
    API); when absent it is queried point-to-point.
    """
    if first_mile is None:
        first_mile = cost_model.oracle.distance(vehicle.node, batch.first_pickup_node, now)
    if first_mile > max_first_mile:
        return omega, None
    weight, plan = cost_model.marginal_cost(batch.orders, vehicle, now)
    if plan is None or weight == INFINITY:
        return omega, None
    return min(weight, omega), plan


def build_full_foodgraph(batches: Sequence[Batch], vehicles: Sequence[Vehicle],
                         cost_model: CostModel, now: float,
                         omega: float = DEFAULT_OMEGA,
                         max_first_mile: float = DEFAULT_MAX_FIRST_MILE) -> FoodGraph:
    """Quadratic FoodGraph construction: every batch-vehicle pair is evaluated.

    The first-mile feasibility checks for all ``|V| x |B|`` pairs resolve in
    a single batched :meth:`DistanceOracle.distance_matrix` call (the
    vectorised hub-label block kernel) instead of one point query per pair.
    """
    graph = FoodGraph(list(batches), list(vehicles), omega=omega)
    if graph.batches and graph.vehicles:
        first_miles = cost_model.oracle.distance_matrix(
            [vehicle.node for vehicle in graph.vehicles],
            [batch.first_pickup_node for batch in graph.batches], now)
    for b_idx, batch in enumerate(graph.batches):
        for v_idx, vehicle in enumerate(graph.vehicles):
            weight, plan = _pair_weight(batch, vehicle, cost_model, now, omega,
                                        max_first_mile,
                                        first_mile=float(first_miles[v_idx, b_idx]))
            graph.cost_evaluations += 1
            if plan is not None and weight < omega:
                graph.add_edge(b_idx, v_idx, weight, plan)
    return graph


def build_sparsified_foodgraph(batches: Sequence[Batch], vehicles: Sequence[Vehicle],
                               cost_model: CostModel, now: float, k: int,
                               omega: float = DEFAULT_OMEGA,
                               max_first_mile: float = DEFAULT_MAX_FIRST_MILE,
                               use_angular: bool = False,
                               gamma: float = 0.5,
                               max_expansions: int | None = None,
                               vectorized: bool = True) -> FoodGraph:
    """Sparsified FoodGraph construction via best-first search (Alg. 2).

    For every vehicle a best-first search expands road-network nodes in
    ascending blended-weight order; whenever an expanded node is the first
    pick-up node of one or more batches, true-cost edges to those batches are
    added.  The search stops once the vehicle has ``k`` incident edges (or
    the network is exhausted / ``max_expansions`` nodes were expanded).

    ``use_angular`` switches the exploration order from plain travel time to
    the vehicle-sensitive weight of Eq. 8 with the given ``gamma``.

    With ``vectorized`` (the default) the per-window batch work runs on the
    array kernels: the first-mile feasibility values of *all* vehicle/batch
    pairs come from one :meth:`DistanceOracle.distance_matrix` block instead
    of a point query per discovered pair, and angular exploration runs on
    the CSR adjacency (:class:`~repro.core.angular.VehicleSensitiveExplorer`)
    instead of the dict-based reference search.  Both produce bit-identical
    graphs to ``vectorized=False``, which survives as the reference for the
    equivalence tests and benchmarks.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    graph = FoodGraph(list(batches), list(vehicles), omega=omega)
    network = cost_model.oracle.network

    # Index batches by the node at which their route plan starts (V_Pi).
    start_index: dict[int, list[int]] = {}
    for b_idx, batch in enumerate(graph.batches):
        start_index.setdefault(batch.first_pickup_node, []).append(b_idx)

    expansion_cap = max_expansions if max_expansions is not None else network.num_nodes

    first_miles = None
    if vectorized and graph.batches and graph.vehicles:
        # One block kernel call covers every vehicle-batch first-mile check
        # this window could need (bit-equal to the per-pair point queries).
        first_miles = cost_model.oracle.distance_matrix(
            [vehicle.node for vehicle in graph.vehicles],
            [batch.first_pickup_node for batch in graph.batches], now)
    time_terms = coords = None
    if vectorized and use_angular and graph.vehicles:
        csr = network.csr()
        time_terms = blended_time_terms(network, now)
        coords = [network.coord(node) for node in csr.node_ids]

    for v_idx, vehicle in enumerate(graph.vehicles):
        if use_angular:
            if time_terms is not None and vehicle.node in network.csr().index_of:
                explorer = VehicleSensitiveExplorer(
                    network, vehicle, now, gamma,
                    time_terms=time_terms, coords=coords)
            else:
                explorer = BestFirstExplorer(
                    network, vehicle.node,
                    weight=vehicle_sensitive_weight(network, vehicle, now, gamma),
                    t=now)
        else:
            # Plain travel-time ordering needs no per-edge callable: the CSR
            # array kernel inside BestFirstExplorer expands on static weights.
            explorer = BestFirstExplorer(network, vehicle.node, weight=None, t=now)
        expanded = 0
        # Each node is settled at most once, so every (batch, vehicle) pair
        # is evaluated at most once and a local counter tracks the vehicle's
        # degree exactly — no per-expansion graph recount needed.
        degree = 0
        row = first_miles[v_idx] if first_miles is not None else None
        for node, _ in explorer:
            expanded += 1
            for b_idx in start_index.get(node, ()):
                batch = graph.batches[b_idx]
                first_mile = float(row[b_idx]) if row is not None else None
                weight, plan = _pair_weight(batch, vehicle, cost_model, now,
                                            omega, max_first_mile,
                                            first_mile=first_mile)
                graph.cost_evaluations += 1
                if plan is not None and weight < omega:
                    graph.add_edge(b_idx, v_idx, weight, plan)
                    degree += 1
            if degree >= k or expanded >= expansion_cap:
                break
        graph.nodes_expanded += expanded
    return graph


def solve_matching(graph: FoodGraph) -> list[tuple[int, int, RoutePlan, float]]:
    """Minimum-weight matching on a FoodGraph.

    Returns a list of ``(batch_idx, vehicle_idx, route_plan, weight)`` for
    every matched pair whose weight is strictly below Ω — pairs matched only
    through the rejection penalty are treated as "leave unassigned".

    The solve runs on the finite-edge subgraph only
    (:func:`~repro.core.matching.sparse_minimum_weight_matching`): for a
    sparsified FoodGraph with degree bound ``k`` this avoids materialising
    the dense Ω-filled ``|B| x |V|`` matrix entirely, while provably
    producing a matching with the same total cost.

    When a resilience ladder registry is active (``use_ladders``), the solve
    goes through it instead: the registry picks the backend rung, honours
    injected faults, and degrades-and-retries on backend failure.
    """
    if not graph.batches or not graph.vehicles:
        return []
    finite = {key: weight for key, (weight, _) in graph.edges.items()}
    ladders = current_ladders()
    if ladders is not None:
        pairs = ladders.solve_matching(len(graph.batches), len(graph.vehicles),
                                       finite, graph.omega)
    else:
        pairs = sparse_minimum_weight_matching(len(graph.batches),
                                               len(graph.vehicles),
                                               finite, graph.omega)
    assignments: list[tuple[int, int, RoutePlan, float]] = []
    for b_idx, v_idx in pairs:
        plan = graph.plan(b_idx, v_idx)
        weight = graph.weight(b_idx, v_idx)
        if plan is None or weight >= graph.omega:
            continue
        assignments.append((b_idx, v_idx, plan, weight))
    return assignments


__all__ = [
    "FoodGraph",
    "build_full_foodgraph",
    "build_sparsified_foodgraph",
    "solve_matching",
    "DEFAULT_OMEGA",
    "DEFAULT_MAX_FIRST_MILE",
]
