"""FoodGraph construction: the bipartite batch/vehicle assignment graph (Sec. IV-A, IV-C).

The FoodGraph has the order batches on one side, the available vehicles on
the other, and edge weights equal to the marginal cost of assigning a batch
to a vehicle (Eq. 7), with the rejection penalty Ω standing in for forbidden
or prohibitively distant pairs.  Two constructions are provided:

* :func:`build_full_foodgraph` — the quadratic construction that computes the
  true marginal cost of every batch-vehicle pair; this is what the vanilla KM
  baseline uses.
* :func:`build_sparsified_foodgraph` — Alg. 2: a best-first search from each
  vehicle over the road network adds true-cost edges only to the ``k``
  closest batch start nodes; everything else is implicitly Ω.  The search
  order can use either plain travel time or the angular-distance blend of
  Eq. 8.

:func:`solve_matching` runs Kuhn–Munkres on the resulting graph and drops
matches that only exist through Ω edges (those orders stay unassigned and
roll into the next accumulation window).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.angular import travel_time_weight, vehicle_sensitive_weight
from repro.core.matching import minimum_weight_matching
from repro.network.shortest_path import BestFirstExplorer
from repro.orders.batch import Batch
from repro.orders.costs import CostModel
from repro.orders.route_plan import RoutePlan
from repro.orders.vehicle import Vehicle

INFINITY = math.inf

#: Default rejection penalty Ω: 7200 seconds (2 hours), as in Sec. V-B.
DEFAULT_OMEGA = 7200.0

#: Default bound on the vehicle-to-first-pickup travel time: 45 minutes, the
#: delivery-time guarantee used by Swiggy (Sec. V-B).
DEFAULT_MAX_FIRST_MILE = 2700.0


@dataclass
class FoodGraph:
    """A (possibly sparsified) bipartite assignment graph.

    Edges are stored sparsely: a missing ``(batch_idx, vehicle_idx)`` entry
    means the pair's weight is Ω and no route plan is attached.
    """

    batches: List[Batch]
    vehicles: List[Vehicle]
    omega: float = DEFAULT_OMEGA
    edges: Dict[Tuple[int, int], Tuple[float, RoutePlan]] = field(default_factory=dict)
    #: number of true marginal-cost evaluations performed (efficiency metric)
    cost_evaluations: int = 0
    #: number of road-network nodes expanded by best-first search
    nodes_expanded: int = 0

    def weight(self, batch_idx: int, vehicle_idx: int) -> float:
        """Edge weight, Ω when the pair has no explicit edge."""
        edge = self.edges.get((batch_idx, vehicle_idx))
        return edge[0] if edge is not None else self.omega

    def plan(self, batch_idx: int, vehicle_idx: int) -> Optional[RoutePlan]:
        edge = self.edges.get((batch_idx, vehicle_idx))
        return edge[1] if edge is not None else None

    def cost_matrix(self) -> List[List[float]]:
        """Dense batch-by-vehicle cost matrix for the matching solver."""
        return [[self.weight(b, v) for v in range(len(self.vehicles))]
                for b in range(len(self.batches))]

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def vehicle_degree(self, vehicle_idx: int) -> int:
        """Number of finite-weight edges incident to a vehicle."""
        return sum(1 for (b, v) in self.edges if v == vehicle_idx)


def _pair_weight(batch: Batch, vehicle: Vehicle, cost_model: CostModel, now: float,
                 omega: float, max_first_mile: float) -> Tuple[float, Optional[RoutePlan]]:
    """Marginal cost of a batch-vehicle pair, clamped to Ω where required."""
    first_mile = cost_model.oracle.distance(vehicle.node, batch.first_pickup_node, now)
    if first_mile > max_first_mile:
        return omega, None
    weight, plan = cost_model.marginal_cost(batch.orders, vehicle, now)
    if plan is None or weight == INFINITY:
        return omega, None
    return min(weight, omega), plan


def build_full_foodgraph(batches: Sequence[Batch], vehicles: Sequence[Vehicle],
                         cost_model: CostModel, now: float,
                         omega: float = DEFAULT_OMEGA,
                         max_first_mile: float = DEFAULT_MAX_FIRST_MILE) -> FoodGraph:
    """Quadratic FoodGraph construction: every batch-vehicle pair is evaluated."""
    graph = FoodGraph(list(batches), list(vehicles), omega=omega)
    for b_idx, batch in enumerate(graph.batches):
        for v_idx, vehicle in enumerate(graph.vehicles):
            weight, plan = _pair_weight(batch, vehicle, cost_model, now, omega, max_first_mile)
            graph.cost_evaluations += 1
            if plan is not None and weight < omega:
                graph.edges[(b_idx, v_idx)] = (weight, plan)
    return graph


def build_sparsified_foodgraph(batches: Sequence[Batch], vehicles: Sequence[Vehicle],
                               cost_model: CostModel, now: float, k: int,
                               omega: float = DEFAULT_OMEGA,
                               max_first_mile: float = DEFAULT_MAX_FIRST_MILE,
                               use_angular: bool = False,
                               gamma: float = 0.5,
                               max_expansions: Optional[int] = None) -> FoodGraph:
    """Sparsified FoodGraph construction via best-first search (Alg. 2).

    For every vehicle a best-first search expands road-network nodes in
    ascending blended-weight order; whenever an expanded node is the first
    pick-up node of one or more batches, true-cost edges to those batches are
    added.  The search stops once the vehicle has ``k`` incident edges (or
    the network is exhausted / ``max_expansions`` nodes were expanded).

    ``use_angular`` switches the exploration order from plain travel time to
    the vehicle-sensitive weight of Eq. 8 with the given ``gamma``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    graph = FoodGraph(list(batches), list(vehicles), omega=omega)
    network = cost_model.oracle.network

    # Index batches by the node at which their route plan starts (V_Pi).
    start_index: Dict[int, List[int]] = {}
    for b_idx, batch in enumerate(graph.batches):
        start_index.setdefault(batch.first_pickup_node, []).append(b_idx)

    expansion_cap = max_expansions if max_expansions is not None else network.num_nodes

    for v_idx, vehicle in enumerate(graph.vehicles):
        if use_angular:
            weight_fn = vehicle_sensitive_weight(network, vehicle, now, gamma)
        else:
            weight_fn = travel_time_weight(network, now)
        explorer = BestFirstExplorer(network, vehicle.node, weight=weight_fn, t=now)
        degree = 0
        expanded = 0
        for node, _ in explorer:
            expanded += 1
            for b_idx in start_index.get(node, ()):
                batch = graph.batches[b_idx]
                weight, plan = _pair_weight(batch, vehicle, cost_model, now,
                                            omega, max_first_mile)
                graph.cost_evaluations += 1
                if plan is not None and weight < omega:
                    graph.edges[(b_idx, v_idx)] = (weight, plan)
                    degree += 1
            if degree >= k or expanded >= expansion_cap:
                break
        graph.nodes_expanded += expanded
    return graph


def solve_matching(graph: FoodGraph) -> List[Tuple[int, int, RoutePlan, float]]:
    """Minimum-weight matching on a FoodGraph.

    Returns a list of ``(batch_idx, vehicle_idx, route_plan, weight)`` for
    every matched pair whose weight is strictly below Ω — pairs matched only
    through the rejection penalty are treated as "leave unassigned".
    """
    if not graph.batches or not graph.vehicles:
        return []
    matrix = graph.cost_matrix()
    pairs = minimum_weight_matching(matrix)
    assignments: List[Tuple[int, int, RoutePlan, float]] = []
    for b_idx, v_idx in pairs:
        plan = graph.plan(b_idx, v_idx)
        weight = graph.weight(b_idx, v_idx)
        if plan is None or weight >= graph.omega:
            continue
        assignments.append((b_idx, v_idx, plan, weight))
    return assignments


__all__ = [
    "FoodGraph",
    "build_full_foodgraph",
    "build_sparsified_foodgraph",
    "solve_matching",
    "DEFAULT_OMEGA",
    "DEFAULT_MAX_FIRST_MILE",
]
