"""The assignment-policy interface shared by the simulator and all algorithms.

A policy is invoked once per accumulation window with the unassigned orders
``O(l)``, the available vehicles ``V(l)`` and the current timestamp; it
returns a list of :class:`Assignment` objects, each pairing one vehicle with
a batch of orders and the route plan that will serve them.  Policies never
mutate vehicles — the simulator applies the returned assignments — which
keeps them independently testable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Sequence

from repro.orders.order import Order
from repro.orders.route_plan import RoutePlan
from repro.orders.vehicle import Vehicle


@dataclass(frozen=True)
class Assignment:
    """One window-level assignment decision: a batch of orders for a vehicle."""

    vehicle: Vehicle
    orders: tuple[Order, ...]
    plan: RoutePlan
    weight: float = 0.0

    def __post_init__(self) -> None:
        if not self.orders:
            raise ValueError("an assignment must contain at least one order")


class AssignmentPolicy(abc.ABC):
    """Base class of every order-to-vehicle assignment strategy.

    Attributes
    ----------
    name:
        Short identifier used in experiment reports.
    reshuffle:
        Whether the simulator should release assigned-but-not-picked-up
        orders back into the unassigned pool before calling the policy
        (Sec. IV-D2).  Only FoodMatch variants enable this.
    """

    name: str = "policy"
    reshuffle: bool = False

    @abc.abstractmethod
    def assign(self, orders: Sequence[Order], vehicles: Sequence[Vehicle],
               now: float) -> list[Assignment]:
        """Assign the window's orders to vehicles.

        Implementations must respect the capacity constraints of Def. 4 and
        must not assign the same order twice or overload a vehicle.  Orders
        left out of the returned assignments remain unassigned and roll over
        into the next accumulation window.
        """

    @staticmethod
    def eligible_vehicles(vehicles: Sequence[Vehicle], now: float) -> list[Vehicle]:
        """Vehicles that are on duty and have residual order capacity."""
        return [vehicle for vehicle in vehicles
                if vehicle.is_on_duty(now) and vehicle.order_count < vehicle.max_orders]

    def describe(self) -> str:
        """Human-readable one-line description (experiment reports)."""
        return self.name


__all__ = ["Assignment", "AssignmentPolicy"]
