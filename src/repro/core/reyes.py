"""The Reyes et al. baseline (Sec. I-A and V-C of the paper).

Reyes et al. solve the meal delivery routing problem with two simplifying
assumptions the paper criticises:

* travel times come from the **haversine** distance between coordinates
  (divided by an assumed average speed), not from the road network, and
* two orders may be **batched only when they come from the same restaurant**.

This policy reproduces those decision rules: same-restaurant orders arriving
in the same accumulation window are grouped (up to MAXO / MAXI), candidate
costs are estimated with haversine travel times, and the window is solved as
a minimum-weight matching.  Crucially the *decisions* use haversine estimates
but the *execution* happens on the real road network — the returned route
plans are network plans — which is precisely why the strategy loses so much
ground in Fig. 6(b).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.core.foodgraph import DEFAULT_MAX_FIRST_MILE, DEFAULT_OMEGA
from repro.core.matching import minimum_weight_matching
from repro.core.policy import Assignment, AssignmentPolicy
from repro.network.geometry import haversine_distance
from repro.orders.costs import CostModel
from repro.orders.order import Order
from repro.orders.vehicle import Vehicle

INFINITY = math.inf


class ReyesPolicy(AssignmentPolicy):
    """Haversine-based matching with same-restaurant-only batching.

    Parameters
    ----------
    cost_model:
        Used only to produce executable network route plans for the chosen
        assignments and to check feasibility; never for decision costs.
    assumed_speed_kmph:
        Speed used to convert haversine kilometres into seconds for the
        decision-time cost estimates.
    """

    name = "reyes"
    reshuffle = False

    def __init__(self, cost_model: CostModel, assumed_speed_kmph: float = 25.0,
                 omega: float = DEFAULT_OMEGA,
                 max_first_mile: float = DEFAULT_MAX_FIRST_MILE,
                 max_orders: int = 3, max_items: int = 10) -> None:
        self._cost_model = cost_model
        self._speed = assumed_speed_kmph
        self._omega = omega
        self._max_first_mile = max_first_mile
        self._max_orders = max_orders
        self._max_items = max_items

    # ------------------------------------------------------------------ #
    # haversine cost estimates
    # ------------------------------------------------------------------ #
    def _travel_seconds(self, node_a: int, node_b: int) -> float:
        network = self._cost_model.oracle.network
        km = haversine_distance(network.coord(node_a), network.coord(node_b))
        return 3600.0 * km / self._speed

    def _group_cost(self, group: Sequence[Order], vehicle: Vehicle, now: float) -> float:
        """Estimated extra delivery time of serving a same-restaurant group.

        The vehicle drives to the (single) restaurant, waits for the slowest
        preparation, then visits the customers greedily by nearest-next —
        the simple insertion heuristic used by the baseline.
        """
        restaurant = group[0].restaurant_node
        first_mile = self._travel_seconds(vehicle.node, restaurant)
        arrival = now + first_mile
        clock = max(arrival, max(order.ready_at for order in group))
        location = restaurant
        remaining = list(group)
        total_xdt = 0.0
        while remaining:
            nxt = min(remaining, key=lambda o: self._travel_seconds(location, o.customer_node))
            clock += self._travel_seconds(location, nxt.customer_node)
            location = nxt.customer_node
            direct = self._travel_seconds(nxt.restaurant_node, nxt.customer_node)
            sdt = nxt.prep_time + direct
            total_xdt += max(0.0, (clock - nxt.placed_at) - sdt)
            remaining.remove(nxt)
        return total_xdt

    # ------------------------------------------------------------------ #
    def _build_groups(self, orders: Sequence[Order]) -> list[tuple[Order, ...]]:
        """Group same-restaurant orders (the only batching Reyes allows)."""
        by_restaurant: dict[tuple[int | None, int], list[Order]] = {}
        for order in orders:
            key = (order.restaurant_id, order.restaurant_node)
            by_restaurant.setdefault(key, []).append(order)
        groups: list[tuple[Order, ...]] = []
        for members in by_restaurant.values():
            members.sort(key=lambda o: o.placed_at)
            current: list[Order] = []
            items = 0
            for order in members:
                if current and (len(current) >= self._max_orders
                                or items + order.items > self._max_items):
                    groups.append(tuple(current))
                    current, items = [], 0
                current.append(order)
                items += order.items
            if current:
                groups.append(tuple(current))
        return groups

    # ------------------------------------------------------------------ #
    def assign(self, orders: Sequence[Order], vehicles: Sequence[Vehicle],
               now: float) -> list[Assignment]:
        candidates = self.eligible_vehicles(vehicles, now)
        if not orders or not candidates:
            return []
        groups = self._build_groups(orders)

        matrix: list[list[float]] = []
        for group in groups:
            row = []
            for vehicle in candidates:
                if not vehicle.can_accept(group) or vehicle.order_count > 0:
                    # Reyes assigns at most one group per courier per window
                    # and does not mix with previously assigned work.
                    row.append(INFINITY)
                    continue
                estimate = self._group_cost(group, vehicle, now)
                row.append(min(estimate, self._omega))
            matrix.append(row)

        pairs = minimum_weight_matching(matrix)
        assignments: list[Assignment] = []
        for group_idx, vehicle_idx in pairs:
            if matrix[group_idx][vehicle_idx] >= self._omega:
                continue
            group = groups[group_idx]
            vehicle = candidates[vehicle_idx]
            # Execution happens on the real road network.
            cost, plan = self._cost_model.marginal_cost(group, vehicle, now)
            if plan is None:
                continue
            first_mile = self._cost_model.oracle.distance(
                vehicle.node, group[0].restaurant_node, now)
            if first_mile > self._max_first_mile:
                continue
            assignments.append(Assignment(vehicle=vehicle, orders=group,
                                          plan=plan, weight=cost))
        return assignments


__all__ = ["ReyesPolicy"]
