"""The fleet controller: drives shifts, behaviour and repositioning in the sim.

:class:`FleetController` is the supply-side twin of
:class:`~repro.traffic.controller.TrafficController`.  The simulator calls
:meth:`FleetController.advance` at every accumulation-window boundary; the
controller activates any supply events that began since the last boundary
(surge onboarding, zonal driver drains), recomputes who is on duty, and
reports the vehicles that just logged out so the engine can run the forced
handoff (pending orders back to the pool, onboard deliveries finished under
the no-abandonment rule).

The controller also owns the behavioural RNG streams: offer screening
(stochastic rejection of assignments) and per-order kitchen delays delegate
to the plan's :class:`~repro.fleet.behavior.DriverBehavior`, and idle-vehicle
repositioning targets come from the plan's named policy.  Everything is
seeded, so a run replays bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.core.policy import Assignment
from repro.fleet.behavior import DriverBehavior
from repro.fleet.repositioning import make_repositioning
from repro.fleet.shifts import FleetEvent, FleetTimeline, ShiftSchedule
from repro.network.distance_oracle import DistanceOracle
from repro.orders.order import Order
from repro.orders.vehicle import Vehicle


@dataclass(frozen=True)
class FleetPlan:
    """Everything the simulator needs to run a dynamic fleet.

    Attributes
    ----------
    schedules:
        Per-vehicle :class:`ShiftSchedule` keyed by vehicle id.  Vehicles
        without an entry fall back to their own ``shift_start``/``shift_end``
        window (the seed model).  Reserve vehicles carry an empty schedule.
    timeline:
        The day's supply events (surge onboarding, driver drains).
    behavior:
        Stochastic driver model; ``None`` keeps drivers fully compliant and
        kitchens exactly on time (the ``shifts`` fleet mode).
    repositioning:
        Name of the idle-vehicle policy (see
        :data:`~repro.fleet.repositioning.REPOSITIONING_POLICIES`).
    seed:
        Seed of the controller's RNG streams (drain sampling, offer draws,
        demand-weighted drift).
    reserve_ids:
        Vehicle ids of the reserve pool surge events onboard from.
    """

    schedules: Mapping[int, ShiftSchedule] = field(default_factory=dict)
    timeline: FleetTimeline = field(default_factory=FleetTimeline.empty)
    behavior: DriverBehavior | None = None
    repositioning: str = "stay"
    seed: int = 0
    reserve_ids: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedules", dict(self.schedules))
        object.__setattr__(self, "reserve_ids",
                           tuple(int(v) for v in self.reserve_ids))


@dataclass
class FleetLog:
    """Cumulative account of what the fleet controller did over a run."""

    advances: int = 0
    logins: int = 0
    logouts: int = 0
    surge_activations: int = 0
    drained_vehicles: int = 0
    offers: int = 0
    declines: int = 0
    handoff_orders: int = 0
    repositions: int = 0


class FleetController:
    """Drives a :class:`FleetPlan` against the live fleet during a simulation."""

    def __init__(self, plan: FleetPlan, oracle: DistanceOracle,
                 restaurants: Sequence = ()) -> None:
        self._plan = plan
        self._oracle = oracle
        self._rng = random.Random(plan.seed)
        self._offer_rng = random.Random(plan.seed + 1)
        self._repositioner = make_repositioning(
            plan.repositioning, oracle, restaurants,
            rng=random.Random(plan.seed + 2))
        # Surge events are pre-assigned to concrete reserve vehicles so the
        # mapping is a pure function of the plan (and replays deterministically
        # regardless of runtime state).  Reserves are cycled in id order; a
        # reserve may serve several disjoint surges.
        self._surge_intervals: dict[int, list[tuple[float, float]]] = {}
        reserves = sorted(plan.reserve_ids)
        cursor = 0
        for event in plan.timeline:
            if event.kind != "surge_onboarding" or not reserves:
                continue
            for _ in range(min(event.count, len(reserves))):
                vehicle_id = reserves[cursor % len(reserves)]
                cursor += 1
                self._surge_intervals.setdefault(vehicle_id, []).append(
                    (event.start, event.end))
        # Drain events resolve against runtime vehicle positions, so they are
        # materialised lazily the first time `advance` crosses their start.
        # Keyed by the (frozen, hashable) event itself: event_ids are not
        # validated unique, so they would be an ambiguous activation key.
        self._drain_intervals: dict[int, list[tuple[float, float]]] = {}
        self._activated: set[FleetEvent] = set()
        self._prev_on_duty: set[int] | None = None
        self._time: float | None = None
        self.log = FleetLog()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def plan(self) -> FleetPlan:
        return self._plan

    @property
    def behavior(self) -> DriverBehavior | None:
        return self._plan.behavior

    @property
    def time(self) -> float | None:
        """Timestamp of the last :meth:`advance` (``None`` before the first)."""
        return self._time

    # ------------------------------------------------------------------ #
    # duty state
    # ------------------------------------------------------------------ #
    def on_duty(self, vehicle: Vehicle, t: float) -> bool:
        """Whether ``vehicle`` is available for new work at ``t``.

        Scheduled duty (or an active surge interval) minus any active drain.
        Vehicles without a schedule entry keep the seed semantics
        (``vehicle.is_on_duty``).
        """
        vid = vehicle.vehicle_id
        schedule = self._plan.schedules.get(vid)
        if schedule is not None:
            active = schedule.is_on_duty(t)
        else:
            active = vehicle.is_on_duty(t)
        if not active:
            active = any(start <= t < end
                         for start, end in self._surge_intervals.get(vid, ()))
        if active and any(start <= t < end
                          for start, end in self._drain_intervals.get(vid, ())):
            return False
        return active

    def advance(self, now: float, vehicles: Sequence[Vehicle]) -> list[Vehicle]:
        """Bring the fleet state up to ``now``; return vehicles that logged out.

        Activates drain events whose start was crossed, diffs the on-duty
        set against the previous boundary, and clears repositioning targets
        of vehicles that are no longer on duty (a drained driver heads home,
        not to a hot-spot).  The returned vehicles left duty since the last
        boundary — the engine re-queues their pending orders.
        """
        self._activate_drains(now, vehicles)
        current = {v.vehicle_id for v in vehicles if self.on_duty(v, now)}
        logged_out: list[Vehicle] = []
        if self._prev_on_duty is not None:
            gone = self._prev_on_duty - current
            logged_out = [v for v in vehicles if v.vehicle_id in gone]
            self.log.logins += len(current - self._prev_on_duty)
            self.log.logouts += len(gone)
        else:
            self.log.logins += len(current)
        for vehicle in vehicles:
            if vehicle.reposition_node is not None \
                    and vehicle.vehicle_id not in current:
                vehicle.reposition_node = None
        self._prev_on_duty = current
        self._time = now
        self.log.advances += 1
        return logged_out

    def _activate_drains(self, now: float, vehicles: Sequence[Vehicle]) -> None:
        network = self._oracle.network
        for event in self._plan.timeline:
            if event in self._activated or not event.is_active(now):
                continue
            self._activated.add(event)
            if event.kind == "surge_onboarding":
                self.log.surge_activations += 1
                continue
            zone = event.zone_nodes(network)
            candidates = sorted(
                (v.vehicle_id for v in vehicles
                 if v.node in zone and self.on_duty(v, now)))
            count = round(event.fraction * len(candidates))
            if count <= 0:
                continue
            for vehicle_id in self._rng.sample(candidates, count):
                self._drain_intervals.setdefault(vehicle_id, []).append(
                    (now, event.end))
            self.log.drained_vehicles += count

    # ------------------------------------------------------------------ #
    # offer screening (stochastic rejection)
    # ------------------------------------------------------------------ #
    def screen_offers(self, assignments: Sequence[Assignment], now: float,
                      ) -> tuple[list[Assignment], list[Assignment]]:
        """Split a window's assignments into (accepted, declined).

        Without a behaviour model every offer is accepted.  First miles for
        the whole window resolve in one batched paired-distance query — the
        screening never issues per-pair point queries.
        """
        behavior = self._plan.behavior
        if behavior is None or not assignments:
            return list(assignments), []
        sources = [a.vehicle.node for a in assignments]
        targets = [a.plan.stops[0].node if a.plan.stops else a.vehicle.node
                   for a in assignments]
        first_miles = self._oracle.distances(sources, targets, now)
        accepted: list[Assignment] = []
        declined: list[Assignment] = []
        for idx, assignment in enumerate(assignments):
            self.log.offers += 1
            if behavior.accepts(assignment.vehicle.vehicle_id,
                                float(first_miles[idx]),
                                len(assignment.orders), self._offer_rng):
                accepted.append(assignment)
            else:
                declined.append(assignment)
        self.log.declines += len(declined)
        return accepted, declined

    def prep_delay(self, order: Order) -> float:
        """Extra kitchen hold for ``order`` (0 without a behaviour model)."""
        behavior = self._plan.behavior
        if behavior is None:
            return 0.0
        return behavior.prep_delay(order.order_id)

    # ------------------------------------------------------------------ #
    # idle repositioning
    # ------------------------------------------------------------------ #
    def plan_repositioning(self, vehicles: Sequence[Vehicle], now: float) -> int:
        """Assign repositioning targets to idle on-duty vehicles.

        A vehicle qualifies when it is on duty, carries no assignment, has
        no remaining stops and is not already repositioning.  Returns the
        number of vehicles newly put in motion.
        """
        idle = [v for v in vehicles
                if not v.assigned and not v.stop_queue
                and v.reposition_node is None and self.on_duty(v, now)]
        if not idle:
            return 0
        targets = self._repositioner.targets(idle, now)
        moved = 0
        for vehicle in idle:
            target = targets.get(vehicle.vehicle_id)
            if target is None or target == vehicle.node:
                continue
            vehicle.reposition_node = target
            moved += 1
        self.log.repositions += moved
        return moved


__all__ = ["FleetPlan", "FleetController", "FleetLog"]
