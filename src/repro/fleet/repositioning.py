"""Idle-vehicle repositioning policies.

A driver who just delivered their last order sits at the customer's door —
usually a residential node far from any restaurant.  Real platforms nudge
idle drivers back toward demand; the seed simulator left them parked.  This
module supplies three policies the simulator can run *between* accumulation
windows:

``stay``
    The seed behaviour: idle vehicles do not move.
``hotspot``
    Return-to-hotspot: every idle vehicle heads for its nearest restaurant
    hot-spot node (the commercial clusters the workload generator seeds
    restaurants into).
``demand``
    Demand-weighted drift: each idle vehicle picks a hot-spot at random with
    probability proportional to the hot-spot's popularity mass discounted by
    the travel time to reach it, so nearby busy clusters attract most
    drivers without everyone piling onto the single busiest one.

Policies only *choose targets*; the engine walks vehicles toward their
target through the road network (edge-atomic, distance-metered legs, exactly
like delivery movement) and new assignments always pre-empt repositioning.

All candidate selection runs through the oracle's vectorised block kernel
(:meth:`DistanceOracle.distance_matrix
<repro.network.distance_oracle.DistanceOracle.distance_matrix>`) — one
``idle-vehicles x hot-spots`` query per window, never a per-pair loop.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from repro.network.distance_oracle import DistanceOracle
from repro.orders.vehicle import Vehicle

#: The recognised repositioning policy names (CLI / scenario JSON values).
REPOSITIONING_POLICIES = ("stay", "hotspot", "demand")

#: An idle vehicle already within this static travel time (seconds) of its
#: best hot-spot is considered well-positioned and is not moved.
NEAR_ENOUGH_SECONDS = 120.0


def hotspot_nodes(restaurants: Sequence, limit: int = 12) -> list[tuple[int, float]]:
    """Collapse restaurants onto their nodes, keeping per-node popularity mass.

    Returns up to ``limit`` ``(node, popularity)`` pairs, heaviest first —
    the demand anchors repositioning steers toward.  Works on any sequence
    of objects with ``node`` and ``popularity`` attributes.
    """
    mass: dict[int, float] = {}
    for restaurant in restaurants:
        mass[restaurant.node] = mass.get(restaurant.node, 0.0) + restaurant.popularity
    ranked = sorted(mass.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:limit]


class RepositioningPolicy:
    """Base class: map idle vehicles to target nodes (empty dict = stay put)."""

    name = "stay"

    def targets(self, idle_vehicles: Sequence[Vehicle], now: float) -> dict[int, int]:
        """Target node per vehicle id; vehicles absent from the dict stay."""
        return {}


class StayPolicy(RepositioningPolicy):
    """The seed behaviour: idle vehicles never move."""

    name = "stay"


class ReturnToHotspotPolicy(RepositioningPolicy):
    """Send every idle vehicle to its nearest restaurant hot-spot."""

    name = "hotspot"

    def __init__(self, oracle: DistanceOracle, restaurants: Sequence,
                 limit: int = 12) -> None:
        self._oracle = oracle
        self._anchors = hotspot_nodes(restaurants, limit)

    def targets(self, idle_vehicles: Sequence[Vehicle], now: float) -> dict[int, int]:
        if not idle_vehicles or not self._anchors:
            return {}
        anchor_nodes = [node for node, _ in self._anchors]
        matrix = self._oracle.distance_matrix(
            [vehicle.node for vehicle in idle_vehicles], anchor_nodes, now)
        chosen: dict[int, int] = {}
        for row, vehicle in enumerate(idle_vehicles):
            best_idx, best_dist = None, math.inf
            for col in range(len(anchor_nodes)):
                dist = float(matrix[row, col])
                if dist < best_dist:
                    best_idx, best_dist = col, dist
            if best_idx is None or not math.isfinite(best_dist):
                continue
            if best_dist <= NEAR_ENOUGH_SECONDS:
                continue  # already parked at demand
            chosen[vehicle.vehicle_id] = anchor_nodes[best_idx]
        return chosen


class DemandWeightedDriftPolicy(RepositioningPolicy):
    """Drift idle vehicles toward hot-spots, weighted by popularity over distance."""

    name = "demand"

    def __init__(self, oracle: DistanceOracle, restaurants: Sequence,
                 rng: random.Random, limit: int = 12) -> None:
        self._oracle = oracle
        self._anchors = hotspot_nodes(restaurants, limit)
        self._rng = rng

    def targets(self, idle_vehicles: Sequence[Vehicle], now: float) -> dict[int, int]:
        if not idle_vehicles or not self._anchors:
            return {}
        anchor_nodes = [node for node, _ in self._anchors]
        masses = [mass for _, mass in self._anchors]
        matrix = self._oracle.distance_matrix(
            [vehicle.node for vehicle in idle_vehicles], anchor_nodes, now)
        chosen: dict[int, int] = {}
        for row, vehicle in enumerate(idle_vehicles):
            weights: list[float] = []
            for col in range(len(anchor_nodes)):
                dist = float(matrix[row, col])
                if math.isfinite(dist):
                    # Popularity mass discounted by access time: a cluster 10
                    # minutes away needs twice the mass of one 5 minutes away.
                    weights.append(masses[col] / (1.0 + dist / 300.0))
                else:
                    weights.append(0.0)
            total = sum(weights)
            if total <= 0.0:
                continue
            pick = self._rng.uniform(0.0, total)
            acc = 0.0
            target_col = len(anchor_nodes) - 1
            for col, weight in enumerate(weights):
                acc += weight
                if acc >= pick:
                    target_col = col
                    break
            dist = float(matrix[row, target_col])
            if dist <= NEAR_ENOUGH_SECONDS:
                continue
            chosen[vehicle.vehicle_id] = anchor_nodes[target_col]
        return chosen


def make_repositioning(name: str, oracle: DistanceOracle, restaurants: Sequence,
                       rng: random.Random | None = None) -> RepositioningPolicy:
    """Instantiate a repositioning policy by name."""
    key = (name or "stay").lower()
    if key == "stay":
        return StayPolicy()
    if key == "hotspot":
        return ReturnToHotspotPolicy(oracle, restaurants)
    if key == "demand":
        return DemandWeightedDriftPolicy(oracle, restaurants,
                                         rng if rng is not None else random.Random(0))
    raise ValueError(f"unknown repositioning policy {name!r}; "
                     f"known: {REPOSITIONING_POLICIES}")


__all__ = [
    "REPOSITIONING_POLICIES",
    "NEAR_ENOUGH_SECONDS",
    "RepositioningPolicy",
    "StayPolicy",
    "ReturnToHotspotPolicy",
    "DemandWeightedDriftPolicy",
    "hotspot_nodes",
    "make_repositioning",
]
