"""Stochastic driver behaviour: offer rejection and restaurant prep delays.

The engine's ``rejection_timeout`` models *customers* abandoning an order
that waited too long; this module models the *drivers*.  Two effects the
paper's deployment setting implies but the seed simulator could not express:

* **Offer rejection** — a driver offered a batch may decline it.  The
  acceptance probability starts from a per-vehicle propensity (some drivers
  are pickier than others) and falls with the first-mile distance to the
  pickup and with the batch size.  A declined batch simply stays in the
  unassigned pool and re-enters the next accumulation window's FoodGraph —
  the re-offer cascade — with every decline counted on the order's outcome,
  so no order is ever dropped silently.
* **Prep-time delay** — kitchens run late.  Each order gets one extra
  Gaussian hold on top of its nominal :attr:`~repro.orders.order.Order.ready_at`,
  sampled deterministically per order id, during which the vehicle waits at
  the restaurant (counted in the waiting-time metric, exactly like nominal
  prep waits).

Every draw is seeded: the per-vehicle propensity and the per-order delay
depend only on ``(seed, id)``, and offer draws come from the controller's
own RNG stream, so a simulation replays bit-for-bit under a fixed seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

# Large odd multipliers decorrelate the deterministic per-id RNG streams
# (vehicle propensity vs. order delay) from each other and from the seed.
_VEHICLE_STREAM = 0x9E3779B1
_ORDER_STREAM = 0x85EBCA77


@dataclass(frozen=True)
class DriverBehavior:
    """Seeded behavioural model shared by the whole fleet.

    Attributes
    ----------
    seed:
        Base seed of every behavioural draw.
    base_acceptance:
        Probability that an average driver accepts a zero-first-mile,
        single-order offer.
    distance_sensitivity:
        Acceptance-probability drop per 10 minutes of first-mile travel.
    batch_sensitivity:
        Acceptance-probability drop per order beyond the first in the batch.
    min_acceptance:
        Floor below which the probability never falls (platforms penalise
        serial decliners, so nobody rejects everything).
    propensity_spread:
        Half-width of the per-vehicle propensity band: each vehicle's
        personal multiplier is drawn uniformly from
        ``[1 - spread, 1 + spread]``.
    prep_delay_mean, prep_delay_std:
        Gaussian parameters (seconds) of the per-order extra kitchen delay;
        samples are clamped at zero.
    """

    seed: int = 0
    base_acceptance: float = 0.92
    distance_sensitivity: float = 0.08
    batch_sensitivity: float = 0.04
    min_acceptance: float = 0.25
    propensity_spread: float = 0.08
    prep_delay_mean: float = 90.0
    prep_delay_std: float = 60.0

    def __post_init__(self) -> None:
        for name in ("base_acceptance", "min_acceptance"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1] "
                                 f"(got {value})")
        if self.min_acceptance > self.base_acceptance:
            raise ValueError("min_acceptance cannot exceed base_acceptance")
        for name in ("distance_sensitivity", "batch_sensitivity",
                     "prep_delay_mean", "prep_delay_std"):
            value = getattr(self, name)
            if not (math.isfinite(value) and value >= 0.0):
                raise ValueError(f"{name} must be finite and non-negative "
                                 f"(got {value})")
        if not 0.0 <= self.propensity_spread < 1.0:
            raise ValueError("propensity_spread must be in [0, 1)")

    # ------------------------------------------------------------------ #
    # offer acceptance
    # ------------------------------------------------------------------ #
    def vehicle_propensity(self, vehicle_id: int) -> float:
        """The vehicle's persistent acceptance multiplier (deterministic)."""
        rng = random.Random(self.seed * _VEHICLE_STREAM + vehicle_id)
        return rng.uniform(1.0 - self.propensity_spread,
                           1.0 + self.propensity_spread)

    def acceptance_probability(self, vehicle_id: int, first_mile_seconds: float,
                               batch_size: int) -> float:
        """Probability the driver accepts this offer (Eq.-free, monotone).

        Decreasing in the first mile and the batch size, clamped to
        ``[min_acceptance, 1]``.  An unreachable pickup (infinite first
        mile) is never accepted — though such offers cannot arise from the
        FoodGraph, which prices them at Ω.
        """
        if math.isinf(first_mile_seconds):
            return 0.0
        p = self.base_acceptance * self.vehicle_propensity(vehicle_id)
        p -= self.distance_sensitivity * max(0.0, first_mile_seconds) / 600.0
        p -= self.batch_sensitivity * max(0, batch_size - 1)
        return min(1.0, max(self.min_acceptance, p))

    def accepts(self, vehicle_id: int, first_mile_seconds: float,
                batch_size: int, rng: random.Random) -> bool:
        """Draw the accept/decline decision for one offer from ``rng``."""
        return rng.random() < self.acceptance_probability(
            vehicle_id, first_mile_seconds, batch_size)

    # ------------------------------------------------------------------ #
    # kitchen delays
    # ------------------------------------------------------------------ #
    def prep_delay(self, order_id: int) -> float:
        """Extra kitchen hold (seconds) for an order, deterministic per id."""
        if self.prep_delay_mean == 0.0 and self.prep_delay_std == 0.0:
            return 0.0
        rng = random.Random(self.seed * _ORDER_STREAM + order_id)
        return max(0.0, rng.gauss(self.prep_delay_mean, self.prep_delay_std))


def behavior_from_dict(payload: dict | None) -> DriverBehavior | None:
    """Rebuild a :class:`DriverBehavior` from its serialised form (or ``None``)."""
    if payload is None:
        return None
    return DriverBehavior(
        seed=int(payload["seed"]),
        base_acceptance=float(payload["base_acceptance"]),
        distance_sensitivity=float(payload["distance_sensitivity"]),
        batch_sensitivity=float(payload["batch_sensitivity"]),
        min_acceptance=float(payload["min_acceptance"]),
        propensity_spread=float(payload["propensity_spread"]),
        prep_delay_mean=float(payload["prep_delay_mean"]),
        prep_delay_std=float(payload["prep_delay_std"]),
    )


def behavior_to_dict(behavior: DriverBehavior | None) -> dict | None:
    """Serialise a :class:`DriverBehavior` (inverse of :func:`behavior_from_dict`)."""
    if behavior is None:
        return None
    return {
        "seed": behavior.seed,
        "base_acceptance": behavior.base_acceptance,
        "distance_sensitivity": behavior.distance_sensitivity,
        "batch_sensitivity": behavior.batch_sensitivity,
        "min_acceptance": behavior.min_acceptance,
        "propensity_spread": behavior.propensity_spread,
        "prep_delay_mean": behavior.prep_delay_mean,
        "prep_delay_std": behavior.prep_delay_std,
    }


__all__ = ["DriverBehavior", "behavior_from_dict", "behavior_to_dict"]
