"""Per-vehicle shift schedules and the day's supply-event timeline.

The paper dispatches against a *live* fleet: drivers log in and out over the
day, take breaks, and the platform onboards extra riders when demand surges.
The seed simulator modelled the supply side as a fixed always-online set of
vehicles spawned at t=0; this module supplies the missing timelines:

* :class:`ShiftSchedule` — one vehicle's on-duty intervals (login/logout
  epochs, mid-day breaks) as a normalised sequence of half-open
  ``[start, end)`` blocks;
* :class:`FleetEvent` — a typed, time-bounded supply disturbance
  (``surge_onboarding``: reserve drivers log in for a window;
  ``driver_drain``: a fraction of the drivers inside a travel-time zone log
  out, e.g. rain in one district or a competing gig spike), mirroring the
  scope/overlap design of :class:`~repro.traffic.events.TrafficEvent`;
* :class:`FleetTimeline` — the immutable, sorted day-long schedule of those
  events, with the same boundary/active-at API as
  :class:`~repro.traffic.events.TrafficTimeline`.

Schedules say *when a driver wants to work*; the engine still enforces the
paper's no-abandonment rule on top (a driver whose shift ends mid-route
finishes the deliveries already on board before leaving, and orders accepted
but not yet picked up are handed back to the pool).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from repro.network.graph import RoadNetwork
from repro.network.shortest_path import dijkstra_all

#: The recognised supply-event kinds, in generator/report order.
FLEET_EVENT_KINDS = ("surge_onboarding", "driver_drain")


@dataclass(frozen=True)
class ShiftSchedule:
    """One vehicle's on-duty timeline: sorted, disjoint ``[start, end)`` blocks.

    Overlapping or touching blocks are merged at construction, so the
    normalised form is canonical: two schedules describe the same duty
    pattern iff they compare equal.  An empty schedule means the vehicle
    never logs in on its own (the *reserve* pool surge events draw from).
    """

    intervals: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        blocks: list[tuple[float, float]] = []
        for start, end in self.intervals:
            start, end = float(start), float(end)
            if not (math.isfinite(start) and math.isfinite(end)):
                raise ValueError("shift blocks must have finite start/end times")
            if not end > start:
                raise ValueError(f"shift block must end after it starts "
                                 f"(got [{start}, {end}))")
            blocks.append((start, end))
        blocks.sort()
        merged: list[tuple[float, float]] = []
        for start, end in blocks:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        object.__setattr__(self, "intervals", tuple(merged))

    @classmethod
    def always(cls, start: float = 0.0, end: float = 86400.0) -> ShiftSchedule:
        """A single block covering the whole horizon (the seed fleet model)."""
        return cls(((start, end),))

    @classmethod
    def off(cls) -> ShiftSchedule:
        """An empty schedule: the vehicle only works when surge-onboarded."""
        return cls(())

    def __bool__(self) -> bool:
        return bool(self.intervals)

    def is_on_duty(self, t: float) -> bool:
        """Whether the vehicle is scheduled to work at timestamp ``t``."""
        return any(start <= t < end for start, end in self.intervals)

    def next_logout_after(self, t: float) -> float | None:
        """End of the block containing ``t``; ``None`` when off duty at ``t``."""
        for start, end in self.intervals:
            if start <= t < end:
                return end
        return None

    def next_login_at_or_after(self, t: float) -> float | None:
        """Earliest block start at or after ``t``; ``None`` when the day is done."""
        for start, _ in self.intervals:
            if start >= t:
                return start
        return None

    def on_duty_seconds(self) -> float:
        """Total scheduled duty time."""
        return sum(end - start for start, end in self.intervals)

    def boundaries(self) -> list[float]:
        """Sorted unique login/logout epochs (the controller's change points)."""
        times: set[float] = set()
        for start, end in self.intervals:
            times.add(start)
            times.add(end)
        return sorted(times)


@dataclass(frozen=True)
class FleetEvent:
    """One time-bounded supply disturbance.

    ``surge_onboarding``
        ``count`` reserve drivers (vehicles with an empty base schedule) log
        in for the event's duration.  An optional zone pins *where* the
        platform recruits; without one any reserve qualifies.
    ``driver_drain``
        A ``fraction`` of the drivers on duty inside the zone when the event
        starts log out until it ends (a downpour over one district, a rival
        platform's bonus window).  Drained drivers still obey the
        no-abandonment rule — the engine lets them finish onboard deliveries.

    Zones are travel-time balls around ``zone_center`` on the *pre-traffic*
    static weights, exactly like
    :meth:`TrafficEvent.scope_edges <repro.traffic.events.TrafficEvent.scope_edges>`,
    so an event's scope is intrinsic to the event.
    """

    event_id: int
    kind: str
    start: float
    end: float
    count: int = 0
    fraction: float = 0.0
    zone_center: int | None = None
    zone_radius_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FLEET_EVENT_KINDS:
            raise ValueError(f"unknown fleet event kind {self.kind!r}; "
                             f"known: {FLEET_EVENT_KINDS}")
        if not (math.isfinite(self.start) and math.isfinite(self.end)):
            raise ValueError("fleet event start/end must be finite")
        if not self.end > self.start:
            raise ValueError("fleet event must end after it starts")
        if self.kind == "surge_onboarding":
            if self.count < 1:
                raise ValueError("surge_onboarding events require count >= 1")
        else:
            if not 0.0 < self.fraction <= 1.0:
                raise ValueError("driver_drain events require a fraction in (0, 1]")
            if self.zone_center is None:
                raise ValueError("driver_drain events require a zone_center")
        if self.zone_center is not None and not self.zone_radius_seconds > 0.0:
            raise ValueError("zonal fleet events require a positive "
                             "zone_radius_seconds")

    def is_active(self, t: float) -> bool:
        """Whether the event is in force at timestamp ``t``."""
        return self.start <= t < self.end

    def zone_nodes(self, network: RoadNetwork) -> set[int]:
        """Nodes within the zone's static travel-time radius of the centre.

        Empty for events without a zone (or whose centre is not a node of
        ``network``).  Expansion runs on base times and static multipliers,
        ignoring the hourly profile and any live traffic overrides, so the
        scope never depends on when it is expanded.
        """
        if self.zone_center is None or self.zone_center not in network:
            return set()
        reach = dijkstra_all(
            network, self.zone_center, t=0.0,
            weight=lambda u, v: network.base_time(u, v) * network.edge_multiplier(u, v),
            cutoff=self.zone_radius_seconds)
        return set(reach)


@dataclass(frozen=True)
class FleetTimeline:
    """An immutable day-long schedule of supply events, sorted by start."""

    events: tuple[FleetEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events,
                               key=lambda e: (e.start, e.end, e.event_id)))
        object.__setattr__(self, "events", ordered)

    @classmethod
    def empty(cls) -> FleetTimeline:
        return cls(())

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FleetEvent]:
        return iter(self.events)

    def active_at(self, t: float) -> list[FleetEvent]:
        """Events in force at timestamp ``t`` (sorted by start time)."""
        return [event for event in self.events if event.is_active(t)]

    def boundaries(self) -> list[float]:
        """Sorted unique event start/end times."""
        times = {event.start for event in self.events}
        times.update(event.end for event in self.events)
        return sorted(times)

    def next_change_after(self, t: float) -> float | None:
        """Earliest boundary strictly after ``t``; ``None`` when the day is done."""
        for boundary in self.boundaries():
            if boundary > t:
                return boundary
        return None


def staggered_schedules(vehicle_ids: Sequence[int], start: float, end: float,
                        rng: random.Random, coverage: float = 0.85,
                        break_probability: float = 0.3,
                        break_minutes: tuple[float, float] = (15.0, 40.0),
                        ) -> dict[int, ShiftSchedule]:
    """Generate realistic per-vehicle shift schedules over ``[start, end)``.

    Each vehicle works one contiguous shift of expected length
    ``coverage * (end - start)`` placed uniformly within the horizon; with
    probability ``break_probability`` a mid-shift break of
    ``break_minutes`` splits it into two blocks.  All draws come from
    ``rng``, so schedules are deterministic under the workload seed.
    """
    if not end > start:
        raise ValueError("schedule horizon must end after it starts")
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    horizon = end - start
    schedules: dict[int, ShiftSchedule] = {}
    for vehicle_id in vehicle_ids:
        length = horizon * min(1.0, max(0.1, rng.gauss(coverage, 0.08)))
        latest = end - length
        login = rng.uniform(start, latest) if latest > start else start
        logout = min(end, login + length)
        blocks: list[tuple[float, float]] = [(login, logout)]
        pause = rng.uniform(*break_minutes) * 60.0
        # Only shifts long enough to leave two useful work blocks get a break.
        if rng.random() < break_probability and (logout - login) > 3.0 * pause:
            break_start = rng.uniform(login + (logout - login) * 0.3,
                                      logout - (logout - login) * 0.3 - pause)
            blocks = [(login, break_start), (break_start + pause, logout)]
        schedules[vehicle_id] = ShiftSchedule(tuple(blocks))
    return schedules


__all__ = [
    "ShiftSchedule",
    "FleetEvent",
    "FleetTimeline",
    "FLEET_EVENT_KINDS",
    "staggered_schedules",
]
