"""Driver-lifecycle subsystem: shifts, behaviour and idle repositioning.

The source paper dispatches against a *live* fleet — drivers log in and out
over the day, decline offers, wait at restaurants for food, and drift back
toward demand between orders.  This package is the supply-side twin of
:mod:`repro.traffic`:

* :mod:`repro.fleet.shifts` — per-vehicle :class:`ShiftSchedule` timelines
  (login/logout epochs, mid-day breaks) plus the :class:`FleetTimeline` of
  typed supply events (:class:`FleetEvent`: surge onboarding, zonal driver
  drain), mirroring the traffic timeline's scope/overlap design;
* :mod:`repro.fleet.behavior` — the seeded :class:`DriverBehavior` model:
  stochastic offer rejection (per-vehicle propensity, distance- and
  batch-size-sensitive), and per-order kitchen delays that hold vehicles at
  the pickup;
* :mod:`repro.fleet.repositioning` — idle-vehicle policies (``stay``,
  ``hotspot``, ``demand``) whose candidate selection runs through the
  oracle's vectorised block kernel;
* :mod:`repro.fleet.controller` — the :class:`FleetController` the simulator
  advances at every accumulation-window boundary, and the :class:`FleetPlan`
  a scenario carries (serialised in scenario JSON format v3).

Workload generation (:func:`repro.workload.generator.generate_fleet_plan`),
scenario (de)serialisation (:mod:`repro.workload.io`) and the CLI
(``python -m repro simulate --fleet full``) all understand fleet plans; with
``--fleet none`` the engine is bit-for-bit the static-fleet simulator.
"""

from repro.fleet.behavior import DriverBehavior
from repro.fleet.controller import FleetController, FleetLog, FleetPlan
from repro.fleet.repositioning import (
    REPOSITIONING_POLICIES,
    DemandWeightedDriftPolicy,
    RepositioningPolicy,
    ReturnToHotspotPolicy,
    StayPolicy,
    hotspot_nodes,
    make_repositioning,
)
from repro.fleet.shifts import (
    FLEET_EVENT_KINDS,
    FleetEvent,
    FleetTimeline,
    ShiftSchedule,
    staggered_schedules,
)

__all__ = [
    "ShiftSchedule",
    "FleetEvent",
    "FleetTimeline",
    "FLEET_EVENT_KINDS",
    "staggered_schedules",
    "DriverBehavior",
    "FleetPlan",
    "FleetController",
    "FleetLog",
    "REPOSITIONING_POLICIES",
    "RepositioningPolicy",
    "StayPolicy",
    "ReturnToHotspotPolicy",
    "DemandWeightedDriftPolicy",
    "hotspot_nodes",
    "make_repositioning",
]
