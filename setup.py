"""Setuptools configuration for the reproduction package.

Kept deliberately minimal so ``pip install -e .`` works in offline
environments without ``wheel`` or network access.  The only optional
dependency group is ``[speed]``, which pulls in numba for the compiled
kernel tier (``repro.network.kernels``); without it the package runs
entirely on the pure-python/numpy kernels and logs a single obs.log
notice the first time the compiled backend is requested but unavailable.
"""
from setuptools import find_packages, setup

setup(
    name="repro-dispatch",
    version="1.6.0",
    description=("Reproduction of a food-delivery dispatch paper: batching, "
                 "matching, and city-scale routing infrastructure"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        # Optional compiled kernel tier.  The floor matches
        # repro.network.kernels.NUMBA_FLOOR: 0.57 is the first numba with
        # reliable on-disk caching (njit(cache=True)) on python 3.10+.
        "speed": ["numba>=0.57"],
    },
)
