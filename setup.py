"""Setuptools shim so the package installs in offline environments.

The canonical build configuration lives in pyproject.toml; this file only
exists so that ``python setup.py develop`` / legacy editable installs work on
machines without the ``wheel`` package or network access.
"""
from setuptools import setup

setup()
